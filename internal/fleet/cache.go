package fleet

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"deep/internal/appgraph"
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sim"
	"deep/internal/topo"
)

// Fingerprint is a canonical digest of a (application DAG, cluster,
// scheduler) triple. Two deployment requests with equal fingerprints are
// guaranteed to receive the same placement from any deterministic scheduler,
// which is what makes placements safe to memoize: the Nash best-response
// iteration converges to the same fixed point for identical inputs. It is a
// raw comparable digest (not hex text) so computing one on the per-request
// hot path allocates nothing.
type Fingerprint [sha256.Size]byte

// FingerprintOf computes the canonical fingerprint. Every input the
// schedulers read is folded into the digest — microservice requirements,
// image sizes, architectures, dataflow edges, device specs and power models,
// registries, topology links — so structurally identical requests collide
// (hit the cache) and any divergence, however small, does not.
func FingerprintOf(app *dag.App, cluster *sim.Cluster, scheduler string) Fingerprint {
	return DigestCluster(cluster).Fingerprint(app, scheduler)
}

// ClusterDigest is the precomputed canonical digest of one cluster. The
// cluster side of a fingerprint is by far its most expensive part (device
// power models, the topology link matrix) and is invariant for a fleet
// worker's whole lifetime, so workers digest their private cluster once and
// reuse it for every request.
type ClusterDigest []byte

// DigestCluster canonically digests a cluster.
func DigestCluster(c *sim.Cluster) ClusterDigest {
	h := sha256.New()
	writeClusterFingerprint(h, c)
	return ClusterDigest(h.Sum(nil))
}

// ModelKey digests only the inputs a compiled cost model depends on — the
// application and the cluster — so one compiled model serves every
// scheduler on the same request shape.
func (cd ClusterDigest) ModelKey(app *dag.App) Fingerprint {
	return cd.Fingerprint(app, "")
}

// Fingerprint combines the precomputed cluster digest with an application
// and scheduler name into the full cache key.
func (cd ClusterDigest) Fingerprint(app *dag.App, scheduler string) Fingerprint {
	dg := newDigester()
	return dg.fingerprint(cd, dg.appDigest(app), scheduler)
}

// digester computes per-request fingerprints with reusable scratch: one
// sha256 state, one record buffer, and the sort slices for canonicalizing
// microservices and dataflows. A fleet worker owns one and computes both of
// a request's keys (model key and placement fingerprint) from a single app
// digest, so the steady-state request path hashes the app once and
// allocates nothing. Not safe for concurrent use.
type digester struct {
	h     hash.Hash
	buf   []byte
	ms    []*dag.Microservice
	edges []dag.Dataflow
	keys  []string
	sum   [sha256.Size]byte
}

func newDigester() *digester {
	return &digester{h: sha256.New()}
}

// appDigest canonically digests the application alone, its name included —
// the simulator keys jitter and labels results by it, so two structurally
// identical apps under different names must not alias one compiled shape.
// Records are built with strconv appends instead of fmt; every
// variable-length string is length-prefixed, so a separator byte inside a
// name can never realign two distinct apps onto the same digest.
func (dg *digester) appDigest(app *dag.App) Fingerprint {
	dg.h.Reset()
	dg.ms = append(dg.ms[:0], app.Microservices...)
	sortMicroservices(dg.ms)
	buf := dg.buf[:0]
	num := func(v int64) {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, v, 10)
	}
	field := func(s string) {
		num(int64(len(s)))
		buf = append(buf, '|')
		buf = append(buf, s...)
	}
	flush := func() {
		buf = append(buf, '\n')
		dg.h.Write(buf)
		buf = buf[:0]
	}
	buf = append(buf, "app"...)
	field(app.Name)
	flush()
	for _, m := range dg.ms {
		buf = append(buf, "ms"...)
		field(m.Name)
		num(int64(m.ImageSize))
		num(int64(m.ExternalInput))
		num(int64(len(m.Arches)))
		for _, a := range m.Arches {
			field(string(a))
		}
		num(int64(m.Req.Cores))
		num(int64(m.Req.CPU * 1e6))
		num(int64(m.Req.Memory))
		num(int64(m.Req.Storage))
		num(int64(len(m.Images)))
		flush()
		dg.keys = dg.keys[:0]
		for k := range m.Images {
			dg.keys = append(dg.keys, k)
		}
		sort.Strings(dg.keys)
		for _, reg := range dg.keys {
			buf = append(buf, "img"...)
			field(reg)
			field(m.Images[reg])
			flush()
		}
	}
	dg.edges = append(dg.edges[:0], app.Dataflows...)
	sortDataflows(dg.edges)
	for _, e := range dg.edges {
		buf = append(buf, "df"...)
		field(e.From)
		field(e.To)
		num(int64(e.Size))
		flush()
	}
	dg.buf = buf
	return dg.finish()
}

// fingerprint combines a cluster digest, an app digest, and a scheduler
// name into a cache key. Both inner digests are fixed-length, so the
// concatenation cannot realign.
func (dg *digester) fingerprint(cd ClusterDigest, appDigest Fingerprint, scheduler string) Fingerprint {
	dg.h.Reset()
	buf := dg.buf[:0]
	buf = append(buf, "sched="...)
	buf = append(buf, scheduler...)
	buf = append(buf, '\n')
	buf = append(buf, cd...)
	buf = append(buf, appDigest[:]...)
	dg.h.Write(buf)
	dg.buf = buf
	return dg.finish()
}

// finish snapshots the running hash into a Fingerprint without allocating.
func (dg *digester) finish() Fingerprint {
	dg.h.Sum(dg.sum[:0])
	return Fingerprint(dg.sum)
}

// sortMicroservices orders by name (insertion sort: request-sized inputs,
// no closure allocation).
func sortMicroservices(ms []*dag.Microservice) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Name < ms[j-1].Name; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// sortDataflows orders by (From, To).
func sortDataflows(edges []dag.Dataflow) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j], edges[j-1]
			if a.From > b.From || (a.From == b.From && a.To >= b.To) {
				break
			}
			edges[j], edges[j-1] = b, a
		}
	}
}

// quoted formats a name unambiguously for the (cold-path) cluster records.
func quoted(s string) string { return strconv.Quote(s) }

func writeClusterFingerprint(w io.Writer, c *sim.Cluster) {
	// Duplicate device and registry names are dropped before hashing,
	// keeping the first occurrence in declaration order — the entry the
	// compiled substrate (topo.ClusterTable, Cluster.Device/Registry
	// interning) resolves the name to. Digesting the losers too would let
	// two clusters with different winners collide (sorting the records
	// erases declaration order), handing a digest-keyed consumer a shared
	// table whose semantics differ from its own cluster's; digesting only
	// the winners makes digest equality coincide exactly with compiled
	// behavior.
	devices := make([]string, 0, len(c.Devices))
	devSeen := make(map[string]bool, len(c.Devices))
	for _, d := range c.Devices {
		if devSeen[d.Name] {
			continue
		}
		devSeen[d.Name] = true
		// %v over the power model is deterministic: fmt prints maps in
		// sorted key order. Names are quoted so separator bytes inside
		// them cannot realign records.
		devices = append(devices, fmt.Sprintf("dev|%s|%s|%d|%d|%d|%d|%v",
			quoted(d.Name), d.Arch, d.Cores, int64(d.Speed), d.Memory, d.Storage, d.Power))
	}
	sort.Strings(devices)
	for _, d := range devices {
		fmt.Fprintln(w, d)
	}
	regs := make([]string, 0, len(c.Registries))
	regSeen := make(map[string]bool, len(c.Registries))
	for _, r := range c.Registries {
		if regSeen[r.Name] {
			continue
		}
		regSeen[r.Name] = true
		regs = append(regs, fmt.Sprintf("reg|%s|%s|%t", quoted(r.Name), quoted(r.Node), r.Shared))
	}
	sort.Strings(regs)
	for _, r := range regs {
		fmt.Fprintln(w, r)
	}
	nodes := c.Topology.Nodes() // already sorted
	for _, a := range nodes {
		for _, b := range nodes {
			if l, ok := c.Topology.LinkBetween(a, b); ok {
				fmt.Fprintf(w, "link|%s|%s|%d|%g|%t\n", quoted(a), quoted(b), int64(l.BW), l.RTT, l.SharedCapacity)
			}
		}
	}
	fmt.Fprintf(w, "source|%s\n", quoted(c.SourceNode))
	for _, name := range sortedLayerKeys(c.Layers) {
		for _, l := range c.Layers[name] {
			fmt.Fprintf(w, "layer|%s|%s|%d\n", quoted(name), quoted(l.Digest), l.Size)
		}
	}
}

func sortedLayerKeys(m map[string][]sim.Layer) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// placementCache is a concurrency-safe LRU of memoized placements. Entries
// are stored in compiled form — parallel sorted-name and assignment slices
// rather than Go maps — so a cached placement is immutable by construction
// and a lookup materializes a fresh map for the caller instead of cloning a
// mutable one.
type placementCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	byKey    map[Fingerprint]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key Fingerprint
	// names (sorted) and assigns are parallel: the compiled, read-only form
	// of the memoized placement.
	names   []string
	assigns []sim.Assignment
}

// compile decomposes a placement into the entry's indexed form.
func (e *cacheEntry) compile(p sim.Placement) {
	e.names = make([]string, 0, len(p))
	for name := range p {
		e.names = append(e.names, name)
	}
	sort.Strings(e.names)
	e.assigns = make([]sim.Assignment, len(e.names))
	for i, name := range e.names {
		e.assigns[i] = p[name]
	}
}

// materialize rebuilds a caller-owned placement map from the indexed form.
func (e *cacheEntry) materialize() sim.Placement {
	p := make(sim.Placement, len(e.names))
	for i, name := range e.names {
		p[name] = e.assigns[i]
	}
	return p
}

// newPlacementCache returns an LRU holding up to capacity placements.
// capacity <= 0 disables caching entirely (every Get misses, Put is a no-op).
func newPlacementCache(capacity int) *placementCache {
	return &placementCache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[Fingerprint]*list.Element),
	}
}

// Get returns a copy of the memoized placement, recording a hit or miss.
func (c *placementCache) Get(key Fingerprint) (sim.Placement, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).materialize(), true
}

// GetView returns the memoized placement's compiled view without
// materializing a map: the returned view aliases the entry's immutable
// slices, which stay valid even past eviction (evicting drops the cache's
// reference, never mutates the slices). This is the request path's lookup —
// a hit costs zero allocations.
func (c *placementCache) GetView(key Fingerprint) (PlacementView, bool) {
	if c.capacity <= 0 {
		return PlacementView{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return PlacementView{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return PlacementView{names: e.names, assigns: e.assigns}, true
}

// Put memoizes a placement, evicting the least recently used entry when
// full.
func (c *placementCache) Put(key Fingerprint, p sim.Placement) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).compile(p)
		c.order.MoveToFront(el)
		return
	}
	entry := &cacheEntry{key: key}
	entry.compile(p)
	c.byKey[key] = c.order.PushFront(entry)
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// PutView memoizes a placement already in view form. The entry gets its own
// copies of the slices — a view handed in may alias request-pooled scratch,
// and entries must stay immutable for the lifetime of every view ever served
// from them.
func (c *placementCache) PutView(key Fingerprint, v PlacementView) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		e.names = append([]string(nil), v.names...)
		e.assigns = append([]sim.Assignment(nil), v.assigns...)
		c.order.MoveToFront(el)
		return
	}
	entry := &cacheEntry{
		key:     key,
		names:   append([]string(nil), v.names...),
		assigns: append([]sim.Assignment(nil), v.assigns...),
	}
	c.byKey[key] = c.order.PushFront(entry)
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// InvalidateIf drops every entry whose compiled assignments satisfy pred and
// returns how many were dropped. ApplyChurn uses it to evict placements that
// reference newly crashed hardware; the scan is O(entries) but runs only on
// churn events, never on the request path.
func (c *placementCache) InvalidateIf(pred func(assigns []sim.Assignment) bool) int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if pred(e.assigns) {
			c.order.Remove(el)
			delete(c.byKey, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// Remove drops one entry by key, reporting whether it existed. The request
// path uses it to purge a placement caught stale at the response gate.
func (c *placementCache) Remove(key Fingerprint) bool {
	if c.capacity <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.byKey, key)
	return true
}

// Len returns the number of cached placements.
func (c *placementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time view of the placement cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *placementCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.order.Len()}
}

// compiledShape bundles everything the fleet compiles once per (app,
// cluster) pair: the scheduler's cost model (nil when the fleet's
// scheduler cannot read one) and the simulator's executor plan. Both are
// immutable and safe to share across the whole worker pool; workers rebind
// the plan's device handles to their private clusters before executing
// (workerState.planFor), so sharing the tables never shares cache state.
type compiledShape struct {
	model *costmodel.Model
	plan  *sim.Plan
}

// sharedModelCache is the fleet-wide three-level compiled-shape cache.
//
// Two outer levels hold the two substrates. Cluster tables
// (topo.ClusterTable) — sorted name tables, interned devices, the dense link
// tables — are keyed by cluster digest with a singleflight fill, so N
// applications arriving on one cluster pay the O(devices²) topology scan
// once instead of once per (app, compiler). App tables (appgraph.AppTable) —
// the validated DAG structure, topo order, stages, edge rows — are keyed by
// app digest the same way, so N clusters × 1 app pay the DAG walks once
// instead of once per (cluster, compiler). The inner level holds compiled
// shapes (cost model + simulator plan), read-mostly, sharded by fingerprint
// across independently locked shards so workers rarely contend, also
// singleflight-filled — the first worker to miss a key compiles (fused, over
// the two shared substrates) while every other worker asking for the same
// key blocks on that one compilation instead of redundantly compiling its
// own copy. Hot tenants therefore compile once per fleet, not once per
// worker.
//
// Compiled tables, models, and plans are immutable and safe for concurrent
// ScheduleModel and Exec.Run calls, which is what makes sharing them across
// the pool sound; cluster identity is part of every key (ModelKey folds the
// cluster digest in), so a worker with a different cluster can never be
// handed a stale shape.
type sharedModelCache struct {
	shards []modelShard

	// Cluster-table level, keyed by raw cluster digest bytes. Clusters are
	// few (normally one per fleet — every worker runs Config.NewCluster),
	// so one lock suffices; the FIFO bound only matters when callers churn
	// through reconfigured clusters.
	tablesMu   sync.Mutex
	tables     map[string]*tableEntry
	tableOrder []string

	// App-table level, keyed by app digest. Apps churn faster than clusters
	// (one per tenant shape), so the FIFO bound is wider.
	appsMu   sync.Mutex
	apps     map[Fingerprint]*appEntry
	appOrder []Fingerprint

	hits     atomic.Int64
	misses   atomic.Int64
	compiles atomic.Int64

	tableHits     atomic.Int64
	tableMisses   atomic.Int64
	tableCompiles atomic.Int64

	appHits     atomic.Int64
	appMisses   atomic.Int64
	appCompiles atomic.Int64
}

// tableEntry is a singleflight cell for one cluster table.
type tableEntry struct {
	once  sync.Once
	table *topo.ClusterTable
}

// clusterTableCap bounds the cluster-table level.
const clusterTableCap = 64

// appEntry is a singleflight cell for one compiled app table.
type appEntry struct {
	once  sync.Once
	table *appgraph.AppTable
}

// appTableCap bounds the app-table level.
const appTableCap = 256

// modelShard is one lock domain: a FIFO-bounded map of fill entries.
type modelShard struct {
	mu       sync.Mutex
	capacity int
	byKey    map[Fingerprint]*modelEntry
	order    []Fingerprint
}

// modelEntry is a singleflight cell: once guards the one compilation, and
// shape is safe to read after once.Do returns. cd tags the entry with the
// cluster digest its key folded in (written once at insertion, under the
// shard lock) so churn-epoch hygiene can purge every shape of an abandoned
// epoch without being able to invert the fingerprint.
type modelEntry struct {
	once  sync.Once
	shape compiledShape
	cd    string
}

// modelCacheShards balances lock contention against shard-capacity
// granularity.
const modelCacheShards = 8

// newSharedModelCache builds a cache holding up to capacity models across
// all shards. capacity <= 0 disables caching (getOrCompile always compiles).
func newSharedModelCache(capacity int) *sharedModelCache {
	c := &sharedModelCache{shards: make([]modelShard, modelCacheShards)}
	per := capacity / modelCacheShards
	if per < 1 && capacity > 0 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = modelShard{
			capacity: per,
			byKey:    make(map[Fingerprint]*modelEntry),
		}
	}
	c.tables = make(map[string]*tableEntry)
	c.apps = make(map[Fingerprint]*appEntry)
	return c
}

// tableFor returns the compiled cluster table for the digest, running
// compile at most once per cached digest fleet-wide: concurrent callers for
// the same cluster all block on the first caller's compilation and share its
// result. With the cache disabled every caller compiles a private table.
func (c *sharedModelCache) tableFor(cd ClusterDigest, compile func() *topo.ClusterTable) *topo.ClusterTable {
	if !c.enabled() {
		c.tableCompiles.Add(1)
		return compile()
	}
	key := string(cd)
	c.tablesMu.Lock()
	e, ok := c.tables[key]
	if !ok {
		e = &tableEntry{}
		if len(c.tableOrder) >= clusterTableCap {
			oldest := c.tableOrder[0]
			c.tableOrder = c.tableOrder[1:]
			delete(c.tables, oldest)
		}
		c.tables[key] = e
		c.tableOrder = append(c.tableOrder, key)
	}
	c.tablesMu.Unlock()
	if ok {
		c.tableHits.Add(1)
	} else {
		c.tableMisses.Add(1)
	}
	// Fill outside the lock: a slow table compilation never blocks lookups
	// of other clusters, only callers of this digest.
	e.once.Do(func() {
		c.tableCompiles.Add(1)
		e.table = compile()
	})
	return e.table
}

// appTableFor returns the compiled app table for the digest, running compile
// at most once per cached digest fleet-wide: concurrent callers for the same
// app all block on the first caller's compilation and share its result —
// the DAG walks run once even when N workers compile the app against N
// distinct clusters simultaneously. With the cache disabled every caller
// compiles a private table.
func (c *sharedModelCache) appTableFor(ad Fingerprint, compile func() *appgraph.AppTable) *appgraph.AppTable {
	if !c.enabled() {
		c.appCompiles.Add(1)
		return compile()
	}
	c.appsMu.Lock()
	e, ok := c.apps[ad]
	if !ok {
		e = &appEntry{}
		if len(c.appOrder) >= appTableCap {
			oldest := c.appOrder[0]
			c.appOrder = c.appOrder[1:]
			delete(c.apps, oldest)
		}
		c.apps[ad] = e
		c.appOrder = append(c.appOrder, ad)
	}
	c.appsMu.Unlock()
	if ok {
		c.appHits.Add(1)
	} else {
		c.appMisses.Add(1)
	}
	// Fill outside the lock: a slow app compilation never blocks lookups of
	// other apps, only callers of this digest.
	e.once.Do(func() {
		c.appCompiles.Add(1)
		e.table = compile()
	})
	return e.table
}

// enabled reports whether the cache stores anything at all (a disabled
// cache runs every compile closure and retains nothing).
func (c *sharedModelCache) enabled() bool {
	return len(c.shards) > 0 && c.shards[0].capacity > 0
}

func (c *sharedModelCache) shard(key Fingerprint) *modelShard {
	// Fingerprint is a raw sha256 digest, so any byte is uniform; fold the
	// first eight into the shard index.
	var h uint64
	for i := 0; i < 8; i++ {
		h = h<<8 | uint64(key[i])
	}
	return &c.shards[h%uint64(len(c.shards))]
}

// getOrCompile returns the compiled shape for the key, running compile at
// most once per cached key fleet-wide: concurrent callers for the same key
// all block on the first caller's compilation and share its result. cd is
// the cluster digest the key folded in; it tags the entry for churn-epoch
// purging and costs an allocation only on insertion, never on a hit.
func (c *sharedModelCache) getOrCompile(key Fingerprint, cd ClusterDigest, compile func() compiledShape) compiledShape {
	sh := c.shard(key)
	if sh.capacity <= 0 {
		c.compiles.Add(1)
		return compile()
	}
	sh.mu.Lock()
	e, ok := sh.byKey[key]
	if !ok {
		e = &modelEntry{cd: string(cd)}
		if len(sh.order) >= sh.capacity {
			oldest := sh.order[0]
			sh.order = sh.order[1:]
			delete(sh.byKey, oldest)
		}
		sh.byKey[key] = e
		sh.order = append(sh.order, key)
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	// Fill outside the shard lock: a slow compilation never blocks lookups
	// of other keys in the same shard, only callers of this key.
	e.once.Do(func() {
		c.compiles.Add(1)
		e.shape = compile()
	})
	return e.shape
}

// purgeForCluster drops every compiled shape tagged with the given cluster
// digest and returns how many were dropped. ApplyChurn calls it when an epoch
// is abandoned (superseded or recovered from) so the dead epoch's shapes stop
// occupying cache slots until FIFO pressure happens to evict them. A caller
// already holding an entry keeps using it safely (entries are immutable after
// fill); a worker racing this purge on the old epoch may re-insert one stray
// shape, which the next purge or FIFO eviction reclaims — the stale-placement
// gate keeps it from ever serving a wrong answer.
func (c *sharedModelCache) purgeForCluster(cd ClusterDigest) int {
	if !c.enabled() || len(cd) == 0 {
		return 0
	}
	tag := string(cd)
	purged := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		kept := sh.order[:0]
		for _, k := range sh.order {
			if e, ok := sh.byKey[k]; ok && e.cd == tag {
				delete(sh.byKey, k)
				purged++
				continue
			}
			kept = append(kept, k)
		}
		sh.order = kept
		sh.mu.Unlock()
	}
	return purged
}

// ModelCacheStats is a point-in-time view of the shared compiled-shape
// cache, both levels. A hit counts any lookup that found an existing entry,
// including one still being compiled by another worker (the caller waits
// instead of recompiling); Compiles counts actual compilations, so Misses ==
// Compiles when caching is on means the singleflight never duplicated work.
// The Cluster* counters track the cluster-table level the same way: with N
// workers on one shared cluster shape, ClusterCompiles stays at 1. The App*
// counters track the app-table level: with N workers compiling one app
// against N distinct clusters, AppCompiles stays at 1.
type ModelCacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Compiles int64 `json:"compiles"`
	Entries  int   `json:"entries"`

	ClusterHits     int64 `json:"cluster_hits"`
	ClusterMisses   int64 `json:"cluster_misses"`
	ClusterCompiles int64 `json:"cluster_compiles"`
	ClusterEntries  int   `json:"cluster_entries"`

	AppHits     int64 `json:"app_hits"`
	AppMisses   int64 `json:"app_misses"`
	AppCompiles int64 `json:"app_compiles"`
	AppEntries  int   `json:"app_entries"`
}

// Stats snapshots the cache counters.
func (c *sharedModelCache) Stats() ModelCacheStats {
	s := ModelCacheStats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Compiles:        c.compiles.Load(),
		ClusterHits:     c.tableHits.Load(),
		ClusterMisses:   c.tableMisses.Load(),
		ClusterCompiles: c.tableCompiles.Load(),
		AppHits:         c.appHits.Load(),
		AppMisses:       c.appMisses.Load(),
		AppCompiles:     c.appCompiles.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.byKey)
		sh.mu.Unlock()
	}
	c.tablesMu.Lock()
	s.ClusterEntries = len(c.tables)
	c.tablesMu.Unlock()
	c.appsMu.Lock()
	s.AppEntries = len(c.apps)
	c.appsMu.Unlock()
	return s
}
