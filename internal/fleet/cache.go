package fleet

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sim"
)

// Fingerprint is a canonical digest of a (application DAG, cluster,
// scheduler) triple. Two deployment requests with equal fingerprints are
// guaranteed to receive the same placement from any deterministic scheduler,
// which is what makes placements safe to memoize: the Nash best-response
// iteration converges to the same fixed point for identical inputs.
type Fingerprint string

// FingerprintOf computes the canonical fingerprint. Every input the
// schedulers read is folded into the digest — microservice requirements,
// image sizes, architectures, dataflow edges, device specs and power models,
// registries, topology links — so structurally identical requests collide
// (hit the cache) and any divergence, however small, does not.
func FingerprintOf(app *dag.App, cluster *sim.Cluster, scheduler string) Fingerprint {
	return DigestCluster(cluster).Fingerprint(app, scheduler)
}

// ClusterDigest is the precomputed canonical digest of one cluster. The
// cluster side of a fingerprint is by far its most expensive part (device
// power models, the topology link matrix) and is invariant for a fleet
// worker's whole lifetime, so workers digest their private cluster once and
// reuse it for every request.
type ClusterDigest []byte

// DigestCluster canonically digests a cluster.
func DigestCluster(c *sim.Cluster) ClusterDigest {
	h := sha256.New()
	writeClusterFingerprint(h, c)
	return ClusterDigest(h.Sum(nil))
}

// ModelKey digests only the inputs a compiled cost model depends on — the
// application and the cluster — so one compiled model serves every
// scheduler on the same request shape.
func (cd ClusterDigest) ModelKey(app *dag.App) Fingerprint {
	return cd.Fingerprint(app, "")
}

// Fingerprint combines the precomputed cluster digest with an application
// and scheduler name into the full cache key.
func (cd ClusterDigest) Fingerprint(app *dag.App, scheduler string) Fingerprint {
	h := sha256.New()
	fmt.Fprintf(h, "sched=%s\n", scheduler)
	h.Write(cd)
	writeAppFingerprint(h, app)
	return Fingerprint(hex.EncodeToString(h.Sum(nil)))
}

// writeAppFingerprint serializes the app canonically. This is the
// per-request hot path (the cluster side is digested once per worker), so
// it builds records with strconv appends instead of fmt. Every
// variable-length string is length-prefixed, so a separator byte inside a
// name can never realign two distinct apps onto the same digest.
func writeAppFingerprint(w io.Writer, app *dag.App) {
	ms := make([]*dag.Microservice, len(app.Microservices))
	copy(ms, app.Microservices)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	buf := make([]byte, 0, 256)
	num := func(v int64) {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, v, 10)
	}
	field := func(s string) {
		num(int64(len(s)))
		buf = append(buf, '|')
		buf = append(buf, s...)
	}
	flush := func() {
		buf = append(buf, '\n')
		w.Write(buf)
		buf = buf[:0]
	}
	for _, m := range ms {
		buf = append(buf, "ms"...)
		field(m.Name)
		num(int64(m.ImageSize))
		num(int64(m.ExternalInput))
		num(int64(len(m.Arches)))
		for _, a := range m.Arches {
			field(string(a))
		}
		num(int64(m.Req.Cores))
		num(int64(m.Req.CPU * 1e6))
		num(int64(m.Req.Memory))
		num(int64(m.Req.Storage))
		num(int64(len(m.Images)))
		flush()
		for _, reg := range sortedKeys(m.Images) {
			buf = append(buf, "img"...)
			field(reg)
			field(m.Images[reg])
			flush()
		}
	}
	edges := make([]dag.Dataflow, len(app.Dataflows))
	copy(edges, app.Dataflows)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		buf = append(buf, "df"...)
		field(e.From)
		field(e.To)
		num(int64(e.Size))
		flush()
	}
}

// quoted formats a name unambiguously for the (cold-path) cluster records.
func quoted(s string) string { return strconv.Quote(s) }

func writeClusterFingerprint(w io.Writer, c *sim.Cluster) {
	devices := make([]string, 0, len(c.Devices))
	for _, d := range c.Devices {
		// %v over the power model is deterministic: fmt prints maps in
		// sorted key order. Names are quoted so separator bytes inside
		// them cannot realign records.
		devices = append(devices, fmt.Sprintf("dev|%s|%s|%d|%d|%d|%d|%v",
			quoted(d.Name), d.Arch, d.Cores, int64(d.Speed), d.Memory, d.Storage, d.Power))
	}
	sort.Strings(devices)
	for _, d := range devices {
		fmt.Fprintln(w, d)
	}
	regs := make([]string, 0, len(c.Registries))
	for _, r := range c.Registries {
		regs = append(regs, fmt.Sprintf("reg|%s|%s|%t", quoted(r.Name), quoted(r.Node), r.Shared))
	}
	sort.Strings(regs)
	for _, r := range regs {
		fmt.Fprintln(w, r)
	}
	nodes := c.Topology.Nodes() // already sorted
	for _, a := range nodes {
		for _, b := range nodes {
			if l, ok := c.Topology.LinkBetween(a, b); ok {
				fmt.Fprintf(w, "link|%s|%s|%d|%g|%t\n", quoted(a), quoted(b), int64(l.BW), l.RTT, l.SharedCapacity)
			}
		}
	}
	fmt.Fprintf(w, "source|%s\n", quoted(c.SourceNode))
	for _, name := range sortedLayerKeys(c.Layers) {
		for _, l := range c.Layers[name] {
			fmt.Fprintf(w, "layer|%s|%s|%d\n", quoted(name), quoted(l.Digest), l.Size)
		}
	}
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedLayerKeys(m map[string][]sim.Layer) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// placementCache is a concurrency-safe LRU of memoized placements. Entries
// are stored in compiled form — parallel sorted-name and assignment slices
// rather than Go maps — so a cached placement is immutable by construction
// and a lookup materializes a fresh map for the caller instead of cloning a
// mutable one.
type placementCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	byKey    map[Fingerprint]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key Fingerprint
	// names (sorted) and assigns are parallel: the compiled, read-only form
	// of the memoized placement.
	names   []string
	assigns []sim.Assignment
}

// compile decomposes a placement into the entry's indexed form.
func (e *cacheEntry) compile(p sim.Placement) {
	e.names = make([]string, 0, len(p))
	for name := range p {
		e.names = append(e.names, name)
	}
	sort.Strings(e.names)
	e.assigns = make([]sim.Assignment, len(e.names))
	for i, name := range e.names {
		e.assigns[i] = p[name]
	}
}

// materialize rebuilds a caller-owned placement map from the indexed form.
func (e *cacheEntry) materialize() sim.Placement {
	p := make(sim.Placement, len(e.names))
	for i, name := range e.names {
		p[name] = e.assigns[i]
	}
	return p
}

// newPlacementCache returns an LRU holding up to capacity placements.
// capacity <= 0 disables caching entirely (every Get misses, Put is a no-op).
func newPlacementCache(capacity int) *placementCache {
	return &placementCache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[Fingerprint]*list.Element),
	}
}

// Get returns a copy of the memoized placement, recording a hit or miss.
func (c *placementCache) Get(key Fingerprint) (sim.Placement, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).materialize(), true
}

// Put memoizes a placement, evicting the least recently used entry when
// full.
func (c *placementCache) Put(key Fingerprint, p sim.Placement) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).compile(p)
		c.order.MoveToFront(el)
		return
	}
	entry := &cacheEntry{key: key}
	entry.compile(p)
	c.byKey[key] = c.order.PushFront(entry)
	for c.order.Len() > c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached placements.
func (c *placementCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time view of the placement cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters.
func (c *placementCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.order.Len()}
}

// modelCache memoizes compiled cost models per request shape for a single
// worker goroutine — no locking — with FIFO eviction. A hit turns a
// placement-cache miss into one scratch-state allocation plus the game
// itself instead of a full (app, cluster) recompilation.
type modelCache struct {
	capacity int
	byKey    map[Fingerprint]*costmodel.Model
	order    []Fingerprint
}

func newModelCache(capacity int) *modelCache {
	return &modelCache{
		capacity: capacity,
		byKey:    make(map[Fingerprint]*costmodel.Model, capacity),
	}
}

func (c *modelCache) get(key Fingerprint) (*costmodel.Model, bool) {
	m, ok := c.byKey[key]
	return m, ok
}

func (c *modelCache) put(key Fingerprint, m *costmodel.Model) {
	if c.capacity <= 0 {
		return
	}
	if _, dup := c.byKey[key]; dup {
		c.byKey[key] = m
		return
	}
	if len(c.order) >= c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.byKey, oldest)
	}
	c.byKey[key] = m
	c.order = append(c.order, key)
}
