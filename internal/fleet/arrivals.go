package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ArrivalProcess generates inter-arrival gaps (in seconds) for the open-loop
// traffic driver. Implementations may keep internal state (the diurnal
// process tracks virtual time); the driver calls Next from a single
// goroutine.
type ArrivalProcess interface {
	// Name identifies the process in reports.
	Name() string
	// Next returns the gap before the next arrival in seconds, drawing any
	// randomness from rng.
	Next(rng *rand.Rand) float64
}

// Poisson is a memoryless arrival process with exponential inter-arrival
// gaps at a constant mean rate (requests per second) — the classic open-loop
// load model.
type Poisson struct {
	Rate float64 // mean arrivals per second (> 0)
}

// NewPoisson returns a Poisson process at rate requests per second.
func NewPoisson(rate float64) *Poisson { return &Poisson{Rate: rate} }

// Name implements ArrivalProcess.
func (p *Poisson) Name() string { return "poisson" }

// Next implements ArrivalProcess.
func (p *Poisson) Next(rng *rand.Rand) float64 {
	if p.Rate <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / p.Rate
}

// Bursty is an on/off arrival process: requests arrive in geometric bursts
// (mean BurstSize back-to-back arrivals) separated by exponential idle gaps.
// The idle gap is stretched so the long-run mean rate still equals Rate,
// concentrating the same load into spikes that stress the admission queue.
type Bursty struct {
	Rate      float64 // long-run mean arrivals per second (> 0)
	BurstSize float64 // mean arrivals per burst (>= 1; default 8)

	remaining int // arrivals left in the current burst
}

// NewBursty returns a bursty process with the given long-run rate and mean
// burst size.
func NewBursty(rate, burstSize float64) *Bursty {
	if burstSize < 1 {
		burstSize = 8
	}
	return &Bursty{Rate: rate, BurstSize: burstSize}
}

// Name implements ArrivalProcess.
func (b *Bursty) Name() string { return "bursty" }

// Next implements ArrivalProcess. A BurstSize below 1 (including the zero
// value of a literal &Bursty{...}) is treated as 1, i.e. plain Poisson.
func (b *Bursty) Next(rng *rand.Rand) float64 {
	if b.Rate <= 0 {
		return math.Inf(1)
	}
	if b.remaining > 0 {
		b.remaining--
		return 0
	}
	burstSize := b.BurstSize
	if burstSize < 1 {
		burstSize = 1
	}
	// Draw the next burst's length: geometric with mean burstSize.
	size := 1
	for float64(size) < 1e6 && rng.Float64() > 1/burstSize {
		size++
	}
	b.remaining = size - 1
	// One exponential gap precedes the whole burst; its mean is scaled by
	// the burst size so bursts of mean size k arriving every k/Rate seconds
	// preserve the long-run rate.
	return rng.ExpFloat64() * burstSize / b.Rate
}

// Diurnal modulates a Poisson process sinusoidally between a trough and a
// peak rate over a fixed period, modeling the day/night cycle of a
// user-facing service. Virtual time advances with the generated gaps, so a
// long run sweeps through load valleys and rush hours regardless of how fast
// wall-clock replay is.
type Diurnal struct {
	PeakRate   float64 // arrivals per second at the peak (> 0)
	TroughRate float64 // arrivals per second at the trough (>= 0)
	Period     float64 // seconds per full cycle (> 0; default 86400)

	elapsed float64 // virtual seconds since the start of the run
}

// NewDiurnal returns a diurnal process cycling between troughRate and
// peakRate over period seconds.
func NewDiurnal(peakRate, troughRate, period float64) *Diurnal {
	if period <= 0 {
		period = 86400
	}
	return &Diurnal{PeakRate: peakRate, TroughRate: troughRate, Period: period}
}

// Name implements ArrivalProcess.
func (d *Diurnal) Name() string { return "diurnal" }

// Next implements ArrivalProcess. It uses thinning (Lewis & Shedler): draw
// candidate gaps at the peak rate and accept each with probability
// rate(t)/peak, which samples a non-homogeneous Poisson process exactly.
func (d *Diurnal) Next(rng *rand.Rand) float64 {
	if d.PeakRate <= 0 {
		return math.Inf(1)
	}
	gap := 0.0
	for {
		step := rng.ExpFloat64() / d.PeakRate
		gap += step
		d.elapsed += step
		mid := (d.PeakRate + d.TroughRate) / 2
		amp := (d.PeakRate - d.TroughRate) / 2
		rate := mid + amp*math.Sin(2*math.Pi*d.elapsed/d.Period)
		if rng.Float64()*d.PeakRate <= rate {
			return gap
		}
	}
}

// NewArrivals builds an arrival process by name: "poisson", "bursty", or
// "diurnal". rate is the (long-run) mean arrivals per second. The bursty
// process uses a mean burst of 8; the diurnal process swings ±75 % around
// rate over a 60-second virtual day, so short driver runs still see both
// rush hour and the overnight valley.
func NewArrivals(name string, rate float64) (ArrivalProcess, error) {
	switch strings.ToLower(name) {
	case "poisson":
		return NewPoisson(rate), nil
	case "bursty":
		return NewBursty(rate, 8), nil
	case "diurnal":
		return NewDiurnal(rate*1.75, rate*0.25, 60), nil
	default:
		return nil, fmt.Errorf("fleet: unknown arrival process %q (want poisson|bursty|diurnal)", name)
	}
}
