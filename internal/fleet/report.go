package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"deep/internal/obs"
	"deep/internal/units"
)

// StageStat summarizes one pipeline stage's wall time across the session's
// completed requests. Unlike the live fleet_stage_seconds histograms (which
// are bucket-granular), these are exact: computed post-hoc from the drained
// responses' stage traces.
type StageStat struct {
	Stage string        `json:"stage"`
	Mean  time.Duration `json:"mean"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// TenantStats aggregates one tenant's completed requests.
type TenantStats struct {
	Completed   int           `json:"completed"`
	Failed      int           `json:"failed"`
	CacheHits   int           `json:"cache_hits"`
	MeanLatency time.Duration `json:"mean_latency"`
	// MeanMakespan is the mean simulated application makespan in seconds
	// (virtual time, not wall time).
	MeanMakespan float64 `json:"mean_makespan_s"`
	// Energy is the total simulated energy across the tenant's runs.
	Energy units.Joules `json:"energy_j"`
}

// Report aggregates one load-generation session.
type Report struct {
	Arrivals string        `json:"arrivals"`
	Elapsed  time.Duration `json:"elapsed"`

	// SimWarm reports the fleet's simulation cache mode for the session:
	// true (the long-lived-service default) keeps device layer caches warm
	// across requests; false (Config.ColdCaches) flushes them per request.
	SimWarm bool `json:"sim_warm"`

	// Attempts counts every submission the driver tried; Rejected the
	// queue-full rejections among them.
	Attempts  int `json:"attempts"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	// Throughput is completed requests per wall-clock second.
	Throughput float64 `json:"throughput_rps"`
	// OfferedRate is attempted submissions per wall-clock second.
	OfferedRate float64 `json:"offered_rps"`

	// Latency quantiles over completed requests (end-to-end service time).
	LatencyMean time.Duration `json:"latency_mean"`
	LatencyP50  time.Duration `json:"latency_p50"`
	LatencyP95  time.Duration `json:"latency_p95"`
	LatencyP99  time.Duration `json:"latency_p99"`
	LatencyMax  time.Duration `json:"latency_max"`
	// QueueWaitMean is the mean admission-queue residency over every
	// response that left the queue — failed requests waited too, so they
	// count here even though they are excluded from the service-latency
	// quantiles above.
	QueueWaitMean time.Duration `json:"queue_wait_mean"`

	// Stages is the per-stage wall-time breakdown (mean/p99/max) over
	// completed requests, in pipeline order.
	Stages []StageStat `json:"stages,omitempty"`

	Cache CacheStats `json:"cache"`
	// TotalEnergy is the simulated energy summed over every completed run.
	TotalEnergy units.Joules `json:"total_energy_j"`

	PerTenant map[string]TenantStats `json:"per_tenant"`

	// Churn summarizes fault-injection activity when the session ran with a
	// chaos schedule (TrafficConfig.Chaos); nil otherwise.
	Churn *ChurnReport `json:"churn,omitempty"`
}

// ChurnReport aggregates one session's fault-injection activity: how many
// chaos events landed, how much recompilation and re-placement they forced,
// and what the first request after each cluster epoch paid in latency.
type ChurnReport struct {
	// Events counts chaos events that applied successfully this session.
	Events int `json:"events"`
	// EpochsApplied counts ApplyChurn calls (each bumps the cluster epoch).
	EpochsApplied int64 `json:"epochs_applied"`
	// Invalidated counts placement-cache entries dropped because their
	// placements referenced hardware that went down.
	Invalidated int64 `json:"invalidated"`
	// StaleRejected counts placements (cached or fresh) rejected by the
	// stale gate because churn landed between schedule and validation.
	StaleRejected int64 `json:"stale_rejected"`
	// Reschedules counts retry attempts triggered by stale rejections.
	Reschedules int64 `json:"reschedules"`
	// Downgrades counts requests served by the best-response fallback
	// scheduler instead of the exact pass scheduler.
	Downgrades int64 `json:"downgrades"`
	// DeadlineExceeded counts requests that ran out of deadline mid-pipeline.
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// DegradedResponses counts completed responses flagged Degraded.
	DegradedResponses int `json:"degraded_responses"`
	// FirstPostChurnMean / FirstPostChurnMax summarize the latency of the
	// first completed request at each distinct post-churn epoch — the
	// requests that paid the incremental-recompile and re-placement cost.
	FirstPostChurnMean time.Duration `json:"first_post_churn_mean"`
	FirstPostChurnMax  time.Duration `json:"first_post_churn_max"`
}

// buildReport folds a drained response set into a Report. cache holds this
// session's cache activity (already deltaed against the fleet's lifetime
// counters by the caller).
func buildReport(arrivals string, attempts, rejected int, elapsed time.Duration, responses []*Response, cache CacheStats) *Report {
	r := &Report{
		Arrivals:  arrivals,
		Elapsed:   elapsed,
		Attempts:  attempts,
		Rejected:  rejected,
		Cache:     cache,
		PerTenant: make(map[string]TenantStats),
	}
	var latencies []time.Duration
	var latencySum, waitSum time.Duration
	tenantLatency := make(map[string]time.Duration)
	tenantMakespan := make(map[string]float64)
	var stageSamples [obs.NumStages][]time.Duration
	for _, resp := range responses {
		ts := r.PerTenant[resp.Tenant]
		// Every response — failed or not — spent real time in the admission
		// queue; excluding failures here used to overstate queue health on
		// error-heavy runs.
		waitSum += resp.QueueWait
		if resp.Err != nil {
			r.Failed++
			ts.Failed++
			r.PerTenant[resp.Tenant] = ts
			continue
		}
		r.Completed++
		ts.Completed++
		if resp.CacheHit {
			ts.CacheHits++
		}
		latencies = append(latencies, resp.Latency)
		latencySum += resp.Latency
		tenantLatency[resp.Tenant] += resp.Latency
		tenantMakespan[resp.Tenant] += resp.Result.Makespan
		ts.Energy += resp.Result.TotalEnergy
		r.TotalEnergy += resp.Result.TotalEnergy
		r.PerTenant[resp.Tenant] = ts
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			stageSamples[s] = append(stageSamples[s], resp.Stages.D[s])
		}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		r.Throughput = float64(r.Completed) / secs
		r.OfferedRate = float64(attempts) / secs
	}
	if n := r.Completed + r.Failed; n > 0 {
		r.QueueWaitMean = waitSum / time.Duration(n)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		r.LatencyMean = latencySum / time.Duration(len(latencies))
		r.LatencyP50 = quantile(latencies, 0.50)
		r.LatencyP95 = quantile(latencies, 0.95)
		r.LatencyP99 = quantile(latencies, 0.99)
		r.LatencyMax = latencies[len(latencies)-1]
		r.Stages = make([]StageStat, 0, obs.NumStages)
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			samples := stageSamples[s]
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			var sum time.Duration
			for _, d := range samples {
				sum += d
			}
			r.Stages = append(r.Stages, StageStat{
				Stage: s.String(),
				Mean:  sum / time.Duration(len(samples)),
				P99:   quantile(samples, 0.99),
				Max:   samples[len(samples)-1],
			})
		}
	}
	for tenant, ts := range r.PerTenant {
		if ts.Completed > 0 {
			ts.MeanLatency = tenantLatency[tenant] / time.Duration(ts.Completed)
			ts.MeanMakespan = tenantMakespan[tenant] / float64(ts.Completed)
		}
		r.PerTenant[tenant] = ts
	}
	return r
}

// quantile returns the q-th quantile of an ascending-sorted slice using the
// nearest-rank method.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the report as the deepfleet CLI prints it.
func (r *Report) String() string {
	var b strings.Builder
	sim := "warm (long-lived service default)"
	if !r.SimWarm {
		sim = "cold (per-request cache flush)"
	}
	fmt.Fprintf(&b, "arrivals=%s elapsed=%s sim=%s\n", r.Arrivals, r.Elapsed.Round(time.Millisecond), sim)
	fmt.Fprintf(&b, "requests: attempted=%d completed=%d rejected=%d failed=%d\n",
		r.Attempts, r.Completed, r.Rejected, r.Failed)
	fmt.Fprintf(&b, "throughput: %.1f req/s completed (%.1f req/s offered)\n", r.Throughput, r.OfferedRate)
	fmt.Fprintf(&b, "latency: mean=%s p50=%s p95=%s p99=%s max=%s (queue wait mean=%s)\n",
		r.LatencyMean.Round(time.Microsecond), r.LatencyP50.Round(time.Microsecond),
		r.LatencyP95.Round(time.Microsecond), r.LatencyP99.Round(time.Microsecond),
		r.LatencyMax.Round(time.Microsecond), r.QueueWaitMean.Round(time.Microsecond))
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "stage %-12s mean=%-10s p99=%-10s max=%s\n",
			st.Stage, st.Mean.Round(time.Microsecond), st.P99.Round(time.Microsecond), st.Max.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "placement cache: %.1f%% hit rate (%d hits, %d misses, %d evictions, %d entries)\n",
		100*r.Cache.HitRate(), r.Cache.Hits, r.Cache.Misses, r.Cache.Evictions, r.Cache.Entries)
	fmt.Fprintf(&b, "simulated energy: %s\n", r.TotalEnergy)
	if c := r.Churn; c != nil {
		fmt.Fprintf(&b, "churn: events=%d epochs=%d invalidated=%d stale-rejected=%d reschedules=%d downgrades=%d degraded=%d deadline-exceeded=%d\n",
			c.Events, c.EpochsApplied, c.Invalidated, c.StaleRejected, c.Reschedules, c.Downgrades, c.DegradedResponses, c.DeadlineExceeded)
		if c.FirstPostChurnMax > 0 {
			fmt.Fprintf(&b, "churn: first-post-churn latency mean=%s max=%s\n",
				c.FirstPostChurnMean.Round(time.Microsecond), c.FirstPostChurnMax.Round(time.Microsecond))
		}
	}
	tenants := make([]string, 0, len(r.PerTenant))
	for t := range r.PerTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		ts := r.PerTenant[t]
		fmt.Fprintf(&b, "tenant %-12s completed=%-5d failed=%-3d cache-hits=%-5d mean-latency=%-10s mean-makespan=%.1fs energy=%s\n",
			t, ts.Completed, ts.Failed, ts.CacheHits, ts.MeanLatency.Round(time.Microsecond), ts.MeanMakespan, ts.Energy)
	}
	return b.String()
}
