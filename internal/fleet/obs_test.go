package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"deep/internal/obs"
	"deep/internal/sim"
	"deep/internal/workload"
)

// TestWarmRequestInstrumentationAllocationFree pins the warm request path's
// allocation budget with full instrumentation live: stage stamping, the
// per-stage histograms, the latency histogram, the slow ring, and the
// per-tenant aggregates together must not add a single allocation over the
// pre-observability baseline (14 allocs/request: response plumbing plus the
// caller-owned placement and result copies).
func TestWarmRequestInstrumentationAllocationFree(t *testing.T) {
	f := testFleet(t, Config{Workers: 1, SlowThreshold: time.Hour})
	app := workload.VideoProcessing()
	ctx := context.Background()
	for i := 0; i < 10; i++ { // warm: shape compiled, placement memoized
		if resp, err := f.Do(ctx, Request{Tenant: "t", App: app}); err != nil || resp.Err != nil {
			t.Fatal(err, resp.Err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		resp, err := f.Do(ctx, Request{Tenant: "t", App: app})
		if err != nil || resp.Err != nil {
			t.Fatal(err, resp.Err)
		}
	})
	// The uninstrumented warm path measures 14 allocs/request
	// (BENCH_fleet.json); a couple of slots of headroom absorb scheduler
	// noise without letting an instrumentation regression hide.
	if allocs > 16 {
		t.Fatalf("warm instrumented request = %v allocs, want <= 16", allocs)
	}
}

// TestTenantLabelOverflowBounded pins the bounded-memory guarantee of the
// per-tenant aggregates: the registry interns instrument names forever, so
// past tenantLabelCap unseen tenants must share the fixed tenant="other"
// instruments instead of minting seven new registry entries per name.
func TestTenantLabelOverflowBounded(t *testing.T) {
	f := testFleet(t, Config{Workers: 1})
	reg := f.cfg.Metrics.Obs()
	baseCounters := len(reg.CounterNames())
	baseHists := len(reg.HistogramNames())
	const extra = 64
	for i := 0; i < tenantLabelCap+extra; i++ {
		f.labelsFor(fmt.Sprintf("tenant-%d", i)).completed.Add(1)
	}
	// 3 counters + 4 histograms per interned tenant; the overflow set was
	// already interned at construction, so nothing else may have grown.
	if got, want := len(reg.CounterNames()), baseCounters+3*tenantLabelCap; got != want {
		t.Fatalf("registry holds %d counters after tenant churn, want %d", got, want)
	}
	if got, want := len(reg.HistogramNames()), baseHists+4*tenantLabelCap; got != want {
		t.Fatalf("registry holds %d histograms after tenant churn, want %d", got, want)
	}
	if l := f.labelsFor("one-more-fresh-tenant"); l != f.overflowLabels {
		t.Fatal("past-cap tenant did not get the shared overflow labels")
	}
	c, ok := reg.LookupCounter("fleet_completed{tenant=other}")
	if !ok || c.Value() != extra {
		v := -1.0
		if ok {
			v = c.Value()
		}
		t.Fatalf("overflow completed counter = %v, want %d", v, extra)
	}
}

// TestStageTracingEndToEnd drives real requests and checks the stage
// breakdown everywhere it surfaces: the response trace, the registry's
// per-stage histograms, the Prometheus rendering, and the slow ring.
func TestStageTracingEndToEnd(t *testing.T) {
	// A 1ns fixed threshold captures every request in the slow ring.
	f := testFleet(t, Config{Workers: 2, SlowThreshold: time.Nanosecond})
	app := workload.TextProcessing()
	const n = 8
	for i := 0; i < n; i++ {
		resp, err := f.Do(context.Background(), Request{Tenant: "t", App: app})
		if err != nil || resp.Err != nil {
			t.Fatal(err, resp.Err)
		}
		if resp.Stages.D[obs.StageFingerprint] <= 0 || resp.Stages.D[obs.StageSim] <= 0 {
			t.Fatalf("stages not stamped: %+v", resp.Stages)
		}
		if resp.Stages.D[obs.StageQueue] != resp.QueueWait {
			t.Fatalf("queue stage %v != QueueWait %v", resp.Stages.D[obs.StageQueue], resp.QueueWait)
		}
		if i > 0 && resp.Stages.D[obs.StageSchedule] != 0 && !resp.CacheHit {
			t.Fatalf("request %d missed the placement cache", i)
		}
	}

	var snap obs.HistogramSnapshot
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		f.StageHistogram(s).Snapshot(&snap)
		if snap.Count != n {
			t.Fatalf("stage %s histogram count = %d, want %d", s, snap.Count, n)
		}
	}

	var b strings.Builder
	if err := f.Metrics().Obs().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`fleet_stage_seconds_count{stage="sim_exec"} 8`,
		`fleet_requests_completed 8`,
		`fleet_completed{tenant="t"} 8`,
		`fleet_request_latency_s_count 8`,
		`fleet_slow_requests_captured 8`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	slow := f.SlowRequests()
	if len(slow) != n {
		t.Fatalf("slow ring holds %d, want %d", len(slow), n)
	}
	for _, sr := range slow {
		if sr.Tenant != "t" || sr.App != app.Name || sr.Total <= 0 {
			t.Fatalf("slow entry malformed: %+v", sr)
		}
		if sr.Stages.D[obs.StageSim] <= 0 {
			t.Fatalf("slow entry lost its stage breakdown: %+v", sr)
		}
	}
}

// TestDriveReportStages checks the open-loop driver surfaces per-stage
// quantiles: one StageStat per pipeline stage, in order, with the queue
// stage's mean consistent with the report's QueueWaitMean.
func TestDriveReportStages(t *testing.T) {
	f := testFleet(t, Config{Workers: 2})
	report, err := Drive(context.Background(), f, TrafficConfig{
		Arrivals: NewPoisson(500),
		Mix:      CaseStudyMix(),
		Requests: 40,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Stages) != int(obs.NumStages) {
		t.Fatalf("report has %d stage rows, want %d", len(report.Stages), obs.NumStages)
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		st := report.Stages[s]
		if st.Stage != s.String() {
			t.Fatalf("stage row %d is %q, want %q", s, st.Stage, s.String())
		}
		if st.Mean > st.P99 && st.P99 > 0 || st.P99 > st.Max {
			t.Fatalf("stage %s stats inconsistent: %+v", st.Stage, st)
		}
	}
	if q := report.Stages[obs.StageQueue]; q.Mean != report.QueueWaitMean {
		t.Fatalf("queue stage mean %v != QueueWaitMean %v", q.Mean, report.QueueWaitMean)
	}
	if !strings.Contains(report.String(), "stage sim_exec") {
		t.Fatalf("report text lost its stage lines:\n%s", report)
	}
}

// TestBuildReportQueueWaitIncludesFailed pins the fix for a long-standing
// skew: failed requests spent real time in the admission queue, but the
// report used to drop them from the queue-wait mean (and divide by the
// completed count), overstating queue health on error-heavy runs.
func TestBuildReportQueueWaitIncludesFailed(t *testing.T) {
	responses := []*Response{
		{Tenant: "t", QueueWait: 10 * time.Millisecond, Latency: 20 * time.Millisecond,
			Result: &sim.Result{Makespan: 1}},
		{Tenant: "t", QueueWait: 30 * time.Millisecond, Err: errors.New("boom")},
	}
	r := buildReport("test", 2, 0, time.Second, responses, CacheStats{})
	if r.Completed != 1 || r.Failed != 1 {
		t.Fatalf("counts: %+v", r)
	}
	if want := 20 * time.Millisecond; r.QueueWaitMean != want {
		t.Fatalf("QueueWaitMean = %v, want %v (failed request's wait must count)", r.QueueWaitMean, want)
	}
	// The service-latency quantiles still cover completed requests only.
	if r.LatencyMean != 20*time.Millisecond {
		t.Fatalf("LatencyMean = %v", r.LatencyMean)
	}
}
