package fleet

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"deep/internal/chaos"
	"deep/internal/costmodel"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/workload"
)

func scaled2() *sim.Cluster { return workload.ScaledTestbed(2) }

// TestApplyChurnEpochsAndInvalidation pins the ApplyChurn contract: every
// call bumps the epoch, crashing the devices a memoized placement uses drops
// that entry, unknown names are rejected without advancing the epoch, and a
// full recovery restores the base digest so pre-churn cache keys come back.
func TestApplyChurnEpochsAndInvalidation(t *testing.T) {
	f := testFleet(t, Config{Workers: 1, NewCluster: scaled2})
	app := workload.VideoProcessing()

	cold, err := f.Do(context.Background(), Request{App: app})
	if err != nil || cold.Err != nil {
		t.Fatal(err, cold.Err)
	}
	if cold.Epoch != 0 {
		t.Fatalf("pre-churn epoch %d, want 0", cold.Epoch)
	}

	// Crash every device the memoized placement references.
	used := map[string]bool{}
	for _, a := range cold.Placement.All() {
		used[a.Device] = true
	}
	var fail []string
	for d := range used {
		fail = append(fail, d)
	}
	epoch, invalidated, err := f.ApplyChurn(ChurnDelta{FailDevices: fail})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("epoch %d after first churn, want 1", epoch)
	}
	if invalidated < 1 {
		t.Fatal("crashing the placement's devices invalidated no cache entries")
	}
	st := f.Stats().Churn
	if st.Epoch != 1 || st.DownDevices != len(fail) || st.EpochsApplied != 1 || st.Invalidated < 1 {
		t.Fatalf("unexpected churn stats %+v", st)
	}

	// The next request must re-schedule (entry gone) onto surviving devices.
	warm, err := f.Do(context.Background(), Request{App: app})
	if err != nil || warm.Err != nil {
		t.Fatal(err, warm.Err)
	}
	if warm.CacheHit {
		t.Fatal("request after invalidation still hit the cache")
	}
	if warm.Epoch != 1 {
		t.Fatalf("post-churn epoch %d, want 1", warm.Epoch)
	}
	for _, a := range warm.Placement.All() {
		if used[a.Device] {
			t.Fatalf("placement landed on crashed device %s", a.Device)
		}
	}

	// Unknown names are configuration errors and must not advance the epoch.
	if _, _, err := f.ApplyChurn(ChurnDelta{FailDevices: []string{"no-such-device"}}); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, _, err := f.ApplyChurn(ChurnDelta{FailRegistries: []string{"no-such-registry"}}); err == nil {
		t.Fatal("unknown registry accepted")
	}
	if _, _, err := f.ApplyChurn(ChurnDelta{Links: []LinkChange{{A: "nowhere", B: "medium-00", Factor: 0.5}}}); err == nil {
		t.Fatal("unknown link accepted")
	}
	if got := f.Stats().Churn.Epoch; got != 1 {
		t.Fatalf("failed churn advanced the epoch to %d", got)
	}

	// Full recovery is pristine: the base digest returns by identity, so the
	// placement memoized at epoch 1... is keyed by the churned digest; the
	// original pre-churn entry was invalidated, but the post-recovery
	// schedule re-fills the base key and repeats hit again.
	if _, _, err := f.ApplyChurn(ChurnDelta{RecoverDevices: fail}); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats().Churn; st.DownDevices != 0 || st.Epoch != 2 {
		t.Fatalf("recovery left churn stats %+v", st)
	}
	first, err := f.Do(context.Background(), Request{App: app})
	if err != nil || first.Err != nil {
		t.Fatal(err, first.Err)
	}
	again, err := f.Do(context.Background(), Request{App: app})
	if err != nil || again.Err != nil {
		t.Fatal(err, again.Err)
	}
	if !again.CacheHit {
		t.Fatal("recovered fleet does not serve its cache")
	}
	if !reflect.DeepEqual(again.Placement, cold.Placement) {
		t.Fatal("recovered fleet schedules differently from the pristine fleet")
	}
}

// TestRegistryOutageSteersPlacements pins graceful degradation around a
// registry outage: with the regional registry down, fresh placements pull
// everything from the hub, and recovery restores regional pulls.
func TestRegistryOutageSteersPlacements(t *testing.T) {
	f := testFleet(t, Config{Workers: 1, NewCluster: scaled2})
	app := workload.VideoProcessing()

	if _, _, err := f.ApplyChurn(ChurnDelta{FailRegistries: []string{"regional"}}); err != nil {
		t.Fatal(err)
	}
	resp, err := f.Do(context.Background(), Request{App: app})
	if err != nil || resp.Err != nil {
		t.Fatal(err, resp.Err)
	}
	for ms, a := range resp.Placement.All() {
		if a.Registry == "regional" {
			t.Fatalf("placement pulls %s from the downed regional registry", ms)
		}
	}
	if _, _, err := f.ApplyChurn(ChurnDelta{RecoverRegistries: []string{"regional"}}); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats().Churn; st.DownRegistries != 0 {
		t.Fatalf("recovery left %d registries down", st.DownRegistries)
	}
}

// TestLinkDegradationChangesDigest pins the cache-key semantics of link
// churn: degrading a link re-keys the placement cache (the effective cluster
// changed even though no hardware left), and restoring it brings the
// pre-churn entries back by digest identity.
func TestLinkDegradationChangesDigest(t *testing.T) {
	f := testFleet(t, Config{Workers: 1, NewCluster: scaled2})
	app := workload.TextProcessing()

	if r, err := f.Do(context.Background(), Request{App: app}); err != nil || r.Err != nil {
		t.Fatal(err, r.Err)
	}
	warm, err := f.Do(context.Background(), Request{App: app})
	if err != nil || warm.Err != nil || !warm.CacheHit {
		t.Fatal("pre-churn warm request missed the cache")
	}

	if _, _, err := f.ApplyChurn(ChurnDelta{Links: []LinkChange{{A: "hub", B: "medium-00", Factor: 0.1}}}); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats().Churn; st.DegradedLinks != 1 {
		t.Fatalf("degraded links %d, want 1", st.DegradedLinks)
	}
	degraded, err := f.Do(context.Background(), Request{App: app})
	if err != nil || degraded.Err != nil {
		t.Fatal(err, degraded.Err)
	}
	if degraded.CacheHit {
		t.Fatal("degraded cluster served the pristine cluster's placement")
	}

	if _, _, err := f.ApplyChurn(ChurnDelta{Links: []LinkChange{{A: "hub", B: "medium-00"}}}); err != nil {
		t.Fatal(err)
	}
	restored, err := f.Do(context.Background(), Request{App: app})
	if err != nil || restored.Err != nil {
		t.Fatal(err, restored.Err)
	}
	if !restored.CacheHit {
		t.Fatal("restored cluster did not recover its pre-churn cache entries")
	}
	if !reflect.DeepEqual(restored.Placement, warm.Placement) {
		t.Fatal("restored cluster serves a different placement")
	}
}

// TestChurnStressStaleNeverServed is the acceptance test for the stale
// gate, doubling as the -race stress test: 8 workers serve concurrent load
// while a chaos goroutine crashes and recovers devices (plus registry
// outages and link wobble) as fast as it can. Every successful response
// carries the epoch it was validated against; replaying the recorded
// per-epoch down sets proves no placement was ever served onto hardware
// that was down at its epoch.
func TestChurnStressStaleNeverServed(t *testing.T) {
	f := testFleet(t, Config{Workers: 8, QueueDepth: 512, NewCluster: func() *sim.Cluster {
		return workload.ScaledTestbed(4)
	}})
	devices := []string{
		"medium-00", "small-00", "medium-01", "small-01",
		"medium-02", "small-02", "medium-03", "small-03",
	}

	// Per-epoch ground truth, recorded as each churn lands. Epoch 0 is the
	// pristine state.
	type epochState struct{ devs, regs map[string]bool }
	states := map[int64]epochState{0: {}}
	var mu sync.Mutex
	record := func(epoch int64, devs, regs map[string]bool) {
		d := make(map[string]bool, len(devs))
		for k := range devs {
			d[k] = true
		}
		r := make(map[string]bool, len(regs))
		for k := range regs {
			r[k] = true
		}
		mu.Lock()
		states[epoch] = epochState{devs: d, regs: r}
		mu.Unlock()
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(7))
		down := map[string]bool{}
		regionalDown := false
		degraded := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			var delta ChurnDelta
			switch {
			case len(down) >= 4 || (len(down) > 0 && rng.Intn(2) == 0):
				// Recover a random down device.
				for d := range down {
					delta.RecoverDevices = []string{d}
					delete(down, d)
					break
				}
			default:
				// Crash a random healthy device.
				for {
					d := devices[rng.Intn(len(devices))]
					if !down[d] {
						delta.FailDevices = []string{d}
						down[d] = true
						break
					}
				}
			}
			if rng.Intn(8) == 0 {
				if regionalDown {
					delta.RecoverRegistries = []string{"regional"}
				} else {
					delta.FailRegistries = []string{"regional"}
				}
				regionalDown = !regionalDown
			}
			if rng.Intn(8) == 0 {
				lc := LinkChange{A: "hub", B: "medium-00", Factor: 0.2}
				if degraded {
					lc.Factor = 0 // restore
				}
				delta.Links = []LinkChange{lc}
				degraded = !degraded
			}
			epoch, _, err := f.ApplyChurn(delta)
			if err != nil {
				t.Errorf("churn: %v", err)
				return
			}
			regs := map[string]bool{}
			if regionalDown {
				regs["regional"] = true
			}
			record(epoch, down, regs)
			time.Sleep(300 * time.Microsecond)
		}
	}()

	const loaders = 8
	const perLoader = 25
	responses := make(chan *Response, loaders*perLoader)
	var loadWG sync.WaitGroup
	loadWG.Add(loaders)
	for g := 0; g < loaders; g++ {
		go func(g int) {
			defer loadWG.Done()
			for i := 0; i < perLoader; i++ {
				app := workload.VideoProcessing()
				if (g+i)%2 == 1 {
					app = workload.TextProcessing()
				}
				resp, err := f.Do(context.Background(), Request{
					Tenant: "stress", App: app, Seed: int64(g*perLoader + i),
				})
				if err != nil {
					t.Errorf("loader %d: %v", g, err)
					return
				}
				responses <- resp
			}
		}(g)
	}
	loadWG.Wait()
	close(stop)
	churnWG.Wait()
	close(responses)

	completed, failed := 0, 0
	for resp := range responses {
		if resp.Err != nil {
			// Under saturated churn the only acceptable failures are the
			// bounded-retry exhaustion and deadline expiry; anything else is
			// a broken pipeline.
			if !strings.Contains(resp.Err.Error(), "stale after") && !errors.Is(resp.Err, ErrDeadline) {
				t.Fatalf("unexpected failure under churn: %v", resp.Err)
			}
			failed++
			continue
		}
		completed++
		mu.Lock()
		st, ok := states[resp.Epoch]
		mu.Unlock()
		if !ok {
			t.Fatalf("response validated at unrecorded epoch %d", resp.Epoch)
		}
		for _, a := range resp.Placement.All() {
			if st.devs[a.Device] {
				t.Fatalf("epoch %d served a placement onto crashed device %s", resp.Epoch, a.Device)
			}
			if st.regs[a.Registry] {
				t.Fatalf("epoch %d served a placement pulling from downed registry %s", resp.Epoch, a.Registry)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no requests completed under churn")
	}
	if st := f.Stats().Churn; st.EpochsApplied == 0 {
		t.Fatal("stress run applied no churn")
	}
	t.Logf("completed=%d failed=%d churn=%+v", completed, failed, f.Stats().Churn)
}

// TestDriveWithChaos pins the traffic-driver integration: a generated chaos
// schedule replays against the fleet during an open-loop session and the
// report carries the churn section.
func TestDriveWithChaos(t *testing.T) {
	f := testFleet(t, Config{Workers: 4, QueueDepth: 512, NewCluster: func() *sim.Cluster {
		return workload.ScaledTestbed(2)
	}})
	schedule, err := chaos.Generate(chaos.Config{
		Seed:           3,
		Horizon:        300 * time.Millisecond,
		Devices:        []string{"medium-00", "small-00", "medium-01", "small-01"},
		MinLiveDevices: 2,
		CrashRate:      40,
		MeanDowntime:   30 * time.Millisecond,
		Registries:     []string{"regional"},
		OutageRate:     10,
		MeanOutage:     30 * time.Millisecond,
		Links:          [][2]string{{"hub", "medium-00"}},
		DegradeRate:    10,
		MeanDegrade:    30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if schedule.Len() == 0 {
		t.Fatal("empty chaos schedule")
	}
	report, err := Drive(context.Background(), f, TrafficConfig{
		Arrivals: NewPoisson(300),
		Mix:      CaseStudyMix(),
		Duration: 400 * time.Millisecond,
		Seed:     1,
		Chaos:    schedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Churn == nil {
		t.Fatal("chaos session produced no churn report")
	}
	if report.Churn.Events == 0 {
		t.Fatal("no chaos events fired during the session")
	}
	if report.Churn.EpochsApplied != int64(report.Churn.Events) {
		t.Fatalf("events=%d but epochs=%d", report.Churn.Events, report.Churn.EpochsApplied)
	}
	if report.Completed == 0 {
		t.Fatal("no requests completed under chaos")
	}
	if !strings.Contains(report.String(), "churn:") {
		t.Fatal("report rendering lost the churn section")
	}
}

// TestSubmitCtxCancelWhileBlocked pins satellite behavior: a SubmitCtx
// blocked on a full admission queue honors context cancellation instead of
// waiting forever, and counts the rejection.
func TestSubmitCtxCancelWhileBlocked(t *testing.T) {
	block := make(chan struct{})
	f := New(Config{Workers: 1, QueueDepth: 1, NewCluster: func() *sim.Cluster {
		<-block // stall worker startup so nothing drains the queue
		return workload.Testbed()
	}})
	defer func() {
		close(block)
		f.Close()
	}()

	app := workload.TextProcessing()
	if _, err := f.SubmitCtx(context.Background(), Request{App: app}); err != nil {
		t.Fatal(err) // fills the queue
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.SubmitCtx(ctx, Request{App: app})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked SubmitCtx returned %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancellation took %s", waited)
	}
	if got := f.Stats().Rejected; got != 1 {
		t.Fatalf("rejection counter %d, want 1", got)
	}
	// An already-cancelled context never enqueues.
	done, cancelled := context.WithCancel(context.Background())
	cancelled()
	if _, err := f.SubmitCtx(done, Request{App: app}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SubmitCtx returned %v", err)
	}
}

// TestSubmitCtxAbandonedInQueue pins the accepted-then-abandoned path: a
// request whose submitter cancels while it still sits in the queue is
// answered with the context error instead of being scheduled.
func TestSubmitCtxAbandonedInQueue(t *testing.T) {
	block := make(chan struct{})
	f := New(Config{Workers: 1, QueueDepth: 4, NewCluster: func() *sim.Cluster {
		<-block
		return workload.Testbed()
	}})
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	ch, err := f.SubmitCtx(ctx, Request{App: workload.TextProcessing()})
	if err != nil {
		t.Fatal(err)
	}
	cancel()     // abandon while queued
	close(block) // now let the worker start and drain
	resp := <-ch
	if !errors.Is(resp.Err, context.Canceled) {
		t.Fatalf("abandoned request completed with %v, want context.Canceled", resp.Err)
	}
	if resp.Result != nil {
		t.Fatal("abandoned request was simulated anyway")
	}
}

// TestRequestDeadline pins ErrDeadline: a request whose deadline expires in
// the queue fails typed, and the counter records it.
func TestRequestDeadline(t *testing.T) {
	block := make(chan struct{})
	f := New(Config{Workers: 1, QueueDepth: 4, NewCluster: func() *sim.Cluster {
		<-block
		return workload.Testbed()
	}})
	defer f.Close()

	ch, err := f.Submit(Request{App: workload.TextProcessing(), Deadline: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the deadline lapse in-queue
	close(block)
	resp := <-ch
	if !errors.Is(resp.Err, ErrDeadline) {
		t.Fatalf("expired request failed with %v, want ErrDeadline", resp.Err)
	}
	if got := f.Stats().Churn.DeadlineExceeded; got != 1 {
		t.Fatalf("deadline counter %d, want 1", got)
	}
	// A generous deadline sails through.
	resp2, err := f.Do(context.Background(), Request{App: workload.TextProcessing(), Deadline: time.Minute})
	if err != nil || resp2.Err != nil {
		t.Fatal(err, resp2.Err)
	}
}

// TestDegradationLadder pins scheduleAttempt's rungs directly: attempt 0
// runs the exact scheduler, any retry falls back to best-response dynamics
// (degraded), and non-pass schedulers never downgrade.
func TestDegradationLadder(t *testing.T) {
	f := New(Config{Workers: 1})
	defer f.Close()
	cluster := workload.Testbed()
	w := &workerState{
		scheduler:  sched.NewDEEP(),
		cluster:    cluster,
		effCluster: cluster,
		dig:        newDigester(),
		exec:       sim.NewExec(),
		passes:     make(map[*costmodel.Model]*sched.Pass),
	}
	app := workload.VideoProcessing()
	model := costmodel.Compile(app, cluster)

	exact, degraded, err := f.scheduleAttempt(w, app, model, 0, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if degraded {
		t.Fatal("attempt 0 with no deadline ran degraded")
	}
	if w.exactDur <= 0 {
		t.Fatal("exact schedule did not record its duration")
	}

	retry, degraded, err := f.scheduleAttempt(w, app, model, 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("retry attempt did not fall back to the degraded rung")
	}
	if len(retry) != len(exact) {
		t.Fatalf("degraded placement covers %d microservices, exact covers %d", len(retry), len(exact))
	}

	// Best-response reference: the degraded rung must equal DEEP with pair
	// games capped to one cell.
	want, err := (&sched.DEEP{MaxPairCells: 1}).ScheduleModel(model)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(retry, want) {
		t.Fatal("degraded rung diverges from best-response dynamics")
	}

	// Deadline pressure steers attempt 0 onto the degraded rung when the
	// remaining budget is below the last exact duration.
	w.exactDur = time.Hour
	pressed, degraded, err := f.scheduleAttempt(w, app, model, 0, time.Now().Add(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("deadline pressure did not downgrade")
	}
	if len(pressed) != len(exact) {
		t.Fatal("pressed placement incomplete")
	}

	// A non-pass scheduler has no cheaper rung: retries stay exact.
	w2 := &workerState{
		scheduler:  sched.NewRoundRobin(),
		cluster:    cluster,
		effCluster: cluster,
		dig:        newDigester(),
		exec:       sim.NewExec(),
		passes:     make(map[*costmodel.Model]*sched.Pass),
	}
	if _, degraded, err := f.scheduleAttempt(w2, app, nil, 1, time.Time{}); err != nil {
		t.Fatal(err)
	} else if degraded {
		t.Fatal("non-pass scheduler reported a downgrade")
	}
}

// TestDeltaForEvent pins the chaos-event translation table.
func TestDeltaForEvent(t *testing.T) {
	cases := []struct {
		ev   chaos.Event
		want ChurnDelta
	}{
		{chaos.Event{Kind: chaos.DeviceCrash, Target: "d"}, ChurnDelta{FailDevices: []string{"d"}}},
		{chaos.Event{Kind: chaos.DeviceRecover, Target: "d"}, ChurnDelta{RecoverDevices: []string{"d"}}},
		{chaos.Event{Kind: chaos.RegistryOutage, Target: "r"}, ChurnDelta{FailRegistries: []string{"r"}}},
		{chaos.Event{Kind: chaos.RegistryRecover, Target: "r"}, ChurnDelta{RecoverRegistries: []string{"r"}}},
		{chaos.Event{Kind: chaos.LinkDegrade, A: "a", B: "b", Factor: 0.5}, ChurnDelta{Links: []LinkChange{{A: "a", B: "b", Factor: 0.5}}}},
		{chaos.Event{Kind: chaos.LinkRestore, A: "a", B: "b"}, ChurnDelta{Links: []LinkChange{{A: "a", B: "b"}}}},
	}
	for _, tc := range cases {
		if got := DeltaForEvent(tc.ev); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("DeltaForEvent(%v) = %+v, want %+v", tc.ev, got, tc.want)
		}
	}
}

// TestChurnEpochShapeHygiene pins the eviction half of the churn story: when
// an epoch is abandoned — superseded by further churn or recovered from — the
// compiled shapes keyed by its digest leave the shape cache immediately
// instead of lingering until FIFO pressure evicts them, while the base
// epoch's shapes survive recovery warm.
func TestChurnEpochShapeHygiene(t *testing.T) {
	f := testFleet(t, Config{Workers: 1, NewCluster: scaled2})
	app := workload.VideoProcessing()
	do := func() {
		t.Helper()
		resp, err := f.Do(context.Background(), Request{App: app})
		if err != nil || resp.Err != nil {
			t.Fatal(err, resp.Err)
		}
	}
	do() // base-epoch shape
	base := f.Stats().ModelCache.Entries

	if _, _, err := f.ApplyChurn(ChurnDelta{FailDevices: []string{"medium-00"}}); err != nil {
		t.Fatal(err)
	}
	do() // epoch-1 shape, keyed by the churned digest
	if got := f.Stats().ModelCache.Entries; got != base+1 {
		t.Fatalf("churned shape not cached: %d entries, want %d", got, base+1)
	}

	// Further churn abandons epoch 1: its shape must be purged even though
	// nothing evicted it.
	if _, _, err := f.ApplyChurn(ChurnDelta{FailDevices: []string{"medium-01"}}); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Churn.ShapesPurged < 1 {
		t.Fatalf("superseded epoch purged no shapes: %+v", st.Churn)
	}
	if got := st.ModelCache.Entries; got != base {
		t.Fatalf("after supersede purge: %d entries, want %d", got, base)
	}

	do() // epoch-2 shape
	compiles := f.Stats().ModelCache.Compiles

	// Pristine recovery abandons epoch 2 and restores the base digest by
	// identity: the epoch-2 shape is purged and the base shape serves warm,
	// with no recompilation.
	if _, _, err := f.ApplyChurn(ChurnDelta{RecoverDevices: []string{"medium-00", "medium-01"}}); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().ModelCache.Entries; got != base {
		t.Fatalf("after recovery purge: %d entries, want %d", got, base)
	}
	do()
	if got := f.Stats().ModelCache.Compiles; got != compiles {
		t.Fatalf("recovered fleet recompiled the base shape (%d -> %d compiles)", compiles, got)
	}
}
