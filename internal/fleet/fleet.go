// Package fleet is DEEP's multi-tenant deployment service: it turns the
// single-shot Figure 1 pipeline (schedule one app, simulate it, report) into
// a throughput machine. Deployment requests enter a bounded admission queue
// with backpressure, fan out to a pool of scheduler workers, and have their
// placements memoized in a concurrency-safe LRU keyed by a canonical
// fingerprint of (app DAG, cluster, scheduler) — the Nash best-response
// iteration is deterministic, so repeated shapes skip the game entirely.
// The package also ships an open-loop traffic driver (Poisson, bursty, and
// diurnal arrival processes over configurable application mixes) for
// scenario sweeps far beyond the paper's two case studies.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deep/internal/appgraph"
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/monitor"
	"deep/internal/obs"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/workload"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity; the request was rejected, not enqueued.
	ErrQueueFull = errors.New("fleet: admission queue full")
	// ErrClosed is returned by Submit after Close began.
	ErrClosed = errors.New("fleet: closed")
)

// Config tunes a Fleet.
type Config struct {
	// Workers is the scheduler/simulator pool size (default 1). Each worker
	// owns a private scheduler instance and a private cluster, so workers
	// never contend on scheduler state or device layer caches.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A Submit against
	// a full queue is rejected with ErrQueueFull and counted.
	QueueDepth int
	// NewScheduler constructs one scheduler per worker (default
	// sched.NewDEEP). Any method from sched.All works.
	NewScheduler func() sched.Scheduler
	// NewCluster constructs one cluster per worker (default
	// workload.Testbed). Workers need private clusters because simulation
	// mutates device layer caches.
	NewCluster func() *sim.Cluster
	// CacheSize bounds the placement LRU in entries. Zero means the
	// default of 1024; a negative value disables placement memoization.
	CacheSize int
	// ModelCacheSize bounds the fleet-wide shared compiled-shape cache
	// (cost model + simulator plan) in entries. Zero means the default of
	// 256; a negative value disables sharing — every request then compiles
	// a transient simulator plan, and every placement-cache miss a
	// transient cost model. Unlike the placement cache it is keyed by
	// (app, cluster) only, so one compiled shape serves every scheduler
	// and every worker on the same request shape, with a singleflight fill
	// deduplicating concurrent compilations.
	ModelCacheSize int
	// SimOptions apply to every simulation run; per-request seeds are
	// folded in on top. A fleet is a long-lived service, so by default
	// SimOptions.WarmCaches is forced on — device layer caches persist
	// across requests, the way a real cluster's image caches do. Set
	// ColdCaches to keep whatever WarmCaches value this carries.
	SimOptions sim.Options
	// ColdCaches opts out of the warm-cache default: when true, SimOptions
	// is taken verbatim (its zero value flushes every device layer cache
	// before each run — the one-shot benchmarking behavior, not what a
	// long-lived service wants).
	ColdCaches bool
	// Metrics receives per-tenant aggregates (default: a fresh registry).
	// Its backing obs registry (Metrics.Obs) also carries the fleet's
	// per-stage latency histograms and point-in-time gauges, so rendering
	// that one registry exposes the whole fleet.
	Metrics *monitor.Metrics
	// SlowThreshold fixes the slow-request capture bar: any request slower
	// than this has its full stage breakdown kept in the slow-request
	// ring. Zero (the default) makes the bar rolling — periodically
	// retuned to the current p99 of the request-latency histogram, so the
	// ring tracks the slowest ~1% as load shifts.
	SlowThreshold time.Duration
	// SlowRingSize bounds the slow-request ring in entries. Zero means the
	// default of 64; a negative value disables slow-request capture.
	SlowRingSize int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.NewScheduler == nil {
		c.NewScheduler = func() sched.Scheduler { return sched.NewDEEP() }
	}
	if c.NewCluster == nil {
		c.NewCluster = workload.Testbed
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.ModelCacheSize == 0 {
		c.ModelCacheSize = defaultModelCacheSize
	}
	if !c.ColdCaches {
		c.SimOptions.WarmCaches = true
	}
	if c.Metrics == nil {
		c.Metrics = monitor.NewMetrics()
	}
	if c.SlowRingSize == 0 {
		c.SlowRingSize = defaultSlowRingSize
	}
	return c
}

// defaultSlowRingSize bounds the slow-request ring: enough tail outliers to
// explain an incident, small enough to be memory-irrelevant.
const defaultSlowRingSize = 64

// Request is one tenant's deployment request.
type Request struct {
	// Tenant labels the requester for per-tenant aggregation (default
	// "default").
	Tenant string
	// App is the application to deploy.
	App *dag.App
	// Seed perturbs this request's simulation jitter (combined with
	// Config.SimOptions).
	Seed int64
}

// Response is the outcome of one deployment request.
type Response struct {
	Tenant    string
	App       string
	Placement sim.Placement
	Result    *sim.Result
	// CacheHit is true when the placement came from the memo instead of a
	// scheduling pass.
	CacheHit bool
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
	// Latency is the end-to-end service time (queue wait + scheduling +
	// simulation).
	Latency time.Duration
	// Stages is the per-stage wall-time breakdown of this request (queue
	// wait, fingerprint, shape compile, placement-cache lookup, schedule,
	// simulate). Stages past a failure point are zero.
	Stages obs.StageTrace
	// Err is non-nil when scheduling or simulation failed.
	Err error
}

// Stats is a point-in-time view of the fleet's counters.
type Stats struct {
	Submitted  int64           `json:"submitted"`
	Rejected   int64           `json:"rejected"`
	Completed  int64           `json:"completed"`
	Failed     int64           `json:"failed"`
	InFlight   int64           `json:"in_flight"`
	Cache      CacheStats      `json:"cache"`
	ModelCache ModelCacheStats `json:"model_cache"`
}

// Fleet is a concurrent multi-tenant deployment service. Create with New,
// submit with Submit or Do, stop with Close.
type Fleet struct {
	cfg    Config
	cache  *placementCache
	models *sharedModelCache
	queue  chan *job

	// Telemetry, interned in the Metrics' backing obs registry: per-stage
	// latency histograms, the end-to-end request-latency histogram the
	// rolling slow threshold reads, and the slow-request ring. Workers
	// record on their own shard, so instrumentation adds no shared cache
	// lines (and no allocations) to the request path.
	stages  *obs.StageSet
	latency *obs.Histogram
	slow    *obs.SlowRing

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	// labels interns per-tenant metric names, capped at tenantLabelCap
	// entries (see labelsFor).
	labels     sync.Map
	labelCount atomic.Int64

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	inFlight  atomic.Int64
}

type job struct {
	req      Request
	enqueued time.Time
	done     chan *Response
}

// New starts a fleet with the given config, spinning up the worker pool.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:    cfg,
		cache:  newPlacementCache(cfg.CacheSize),
		models: newSharedModelCache(cfg.ModelCacheSize),
		queue:  make(chan *job, cfg.QueueDepth),
	}
	reg := cfg.Metrics.Obs()
	f.stages = obs.NewStageSet(reg, "fleet_stage_seconds")
	f.latency = reg.Histogram("fleet_request_latency_s")
	f.slow = obs.NewSlowRing(cfg.SlowRingSize, cfg.SlowThreshold, f.latency)
	reg.OnCollect(f.collectGauges)
	f.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go f.worker(i)
	}
	return f
}

// collectGauges publishes the fleet's point-in-time counters as gauges in
// the obs registry; it runs on every exposition pass (Prometheus scrape,
// expvar read), so /metrics always reflects the live admission and cache
// state without any per-request cost.
func (f *Fleet) collectGauges() {
	reg := f.cfg.Metrics.Obs()
	s := f.Stats()
	reg.Gauge("fleet_requests_submitted").Set(float64(s.Submitted))
	reg.Gauge("fleet_requests_rejected").Set(float64(s.Rejected))
	reg.Gauge("fleet_requests_completed").Set(float64(s.Completed))
	reg.Gauge("fleet_requests_failed").Set(float64(s.Failed))
	reg.Gauge("fleet_requests_in_flight").Set(float64(s.InFlight))
	reg.Gauge("fleet_placement_cache_hits").Set(float64(s.Cache.Hits))
	reg.Gauge("fleet_placement_cache_misses").Set(float64(s.Cache.Misses))
	reg.Gauge("fleet_placement_cache_evictions").Set(float64(s.Cache.Evictions))
	reg.Gauge("fleet_placement_cache_entries").Set(float64(s.Cache.Entries))
	reg.Gauge("fleet_shape_cache_hits").Set(float64(s.ModelCache.Hits))
	reg.Gauge("fleet_shape_cache_misses").Set(float64(s.ModelCache.Misses))
	reg.Gauge("fleet_shape_cache_compiles").Set(float64(s.ModelCache.Compiles))
	reg.Gauge("fleet_cluster_table_compiles").Set(float64(s.ModelCache.ClusterCompiles))
	reg.Gauge("fleet_app_table_compiles").Set(float64(s.ModelCache.AppCompiles))
	reg.Gauge("fleet_app_table_entries").Set(float64(s.ModelCache.AppEntries))
	reg.Gauge("fleet_slow_requests_captured").Set(float64(f.slow.Captured()))
	reg.Gauge("fleet_slow_threshold_s").Set(f.slow.Threshold().Seconds())
}

// SlowRequests returns the slow-request ring's current contents, oldest
// first: the full stage breakdown of every captured tail outlier.
func (f *Fleet) SlowRequests() []obs.SlowRequest { return f.slow.Snapshot() }

// StageHistogram exposes one stage's live histogram (for tests and custom
// exposition); the same instruments are rendered by Metrics().Obs().
func (f *Fleet) StageHistogram(s obs.Stage) *obs.Histogram { return f.stages.Histogram(s) }

// Metrics returns the registry receiving per-tenant aggregates.
func (f *Fleet) Metrics() *monitor.Metrics { return f.cfg.Metrics }

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	return Stats{
		Submitted:  f.submitted.Load(),
		Rejected:   f.rejected.Load(),
		Completed:  f.completed.Load(),
		Failed:     f.failed.Load(),
		InFlight:   f.inFlight.Load(),
		Cache:      f.cache.Stats(),
		ModelCache: f.models.Stats(),
	}
}

// Submit enqueues a request without blocking. The returned channel delivers
// exactly one Response when the request completes. A full queue rejects the
// request with ErrQueueFull; a closed fleet rejects with ErrClosed.
func (f *Fleet) Submit(req Request) (<-chan *Response, error) {
	if req.App == nil {
		return nil, fmt.Errorf("fleet: request without app")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	j := &job{req: req, enqueued: time.Now(), done: make(chan *Response, 1)}

	// The read lock lets many submitters race each other but excludes
	// Close, so a send can never hit a closed channel.
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case f.queue <- j:
		f.submitted.Add(1)
		f.inFlight.Add(1)
		return j.done, nil
	default:
		f.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Do submits a request and blocks for its response (or ctx cancellation).
func (f *Fleet) Do(ctx context.Context, req Request) (*Response, error) {
	ch, err := f.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission and drains: every request already accepted is
// completed before Close returns. Safe to call more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	close(f.queue)
	f.mu.Unlock()
	f.wg.Wait()
}

// workerState is the per-worker context: a private scheduler and cluster
// (simulation mutates device layer caches), the cluster digest computed
// once, the shared cluster table resolved once against that digest, a
// fingerprint digester with reusable scratch, a pooled simulator Exec, and a
// pool of scheduler passes keyed by compiled model. Compiled tables, models,
// and plans live in the fleet-wide shared cache, not here: hot tenants
// compile once per fleet rather than once per worker.
type workerState struct {
	scheduler     sched.Scheduler
	cluster       *sim.Cluster
	clusterDigest ClusterDigest
	// shard is this worker's obs shard index: each worker records its
	// counters and histogram observations on its own cache line.
	shard int
	// trace is the reusable per-request stage breakdown; process resets it
	// at the top of every request so failure short-circuits leave the
	// untouched stages at zero rather than at the prior request's values.
	trace obs.StageTrace
	// table is the cluster-side compiled substrate every app-side compile
	// for this worker builds on; workers with digest-identical clusters
	// (the normal case) share one, resolved through the fleet-wide cache.
	table *topo.ClusterTable
	dig   *digester
	exec  *sim.Exec

	passes map[*costmodel.Model]*sched.Pass
	// plans memoizes shared plans rebound to this worker's own cluster:
	// simulation drives (and on cold runs flushes) device layer caches, so
	// each worker must execute against its private devices even when the
	// compiled tables are shared fleet-wide.
	plans map[*sim.Plan]*sim.Plan
}

// defaultModelCacheSize bounds the fleet-wide compiled-shape cache. Models
// and plans are a few dense arrays each; 256 covers the distinct shapes of
// a large multi-tenant mix without unbounded growth.
const defaultModelCacheSize = 256

// passPoolCap bounds each worker's pass and rebound-plan pools. Both are
// keyed by compiled-object identity, so they normally track the shared
// shape cache; the cap matters when that cache is disabled or churning
// (fresh identities per request) and evicts one arbitrary entry per
// insertion instead of growing without bound — hot entries survive and
// evicted shared-cache objects are not pinned indefinitely.
const passPoolCap = 64

// evictOnePoolEntry drops one arbitrary entry from a pool map at capacity.
func evictOnePoolEntry[K comparable, V any](pool map[K]V) {
	for k := range pool {
		delete(pool, k)
		return
	}
}

// worker owns one scheduler and one cluster and processes jobs until the
// queue closes. The worker index doubles as the obs shard, so concurrent
// workers never contend on an instrument cache line.
func (f *Fleet) worker(i int) {
	defer f.wg.Done()
	cluster := f.cfg.NewCluster()
	w := &workerState{
		scheduler:     f.cfg.NewScheduler(),
		cluster:       cluster,
		clusterDigest: DigestCluster(cluster),
		shard:         i,
		dig:           newDigester(),
		exec:          sim.NewExec(),
		passes:        make(map[*costmodel.Model]*sched.Pass),
		plans:         make(map[*sim.Plan]*sim.Plan),
	}
	// Resolve the cluster-side compiled substrate once per worker lifetime:
	// the first worker per cluster digest compiles it, the rest share it.
	w.table = f.models.tableFor(w.clusterDigest, func() *topo.ClusterTable {
		return sim.CompileClusterTable(cluster)
	})
	for j := range f.queue {
		resp := f.process(w, j)
		f.inFlight.Add(-1)
		if resp.Err != nil {
			f.failed.Add(1)
		} else {
			f.completed.Add(1)
		}
		f.stages.RecordAt(w.shard, &w.trace)
		f.latency.ObserveAt(w.shard, resp.Latency.Seconds())
		f.slow.Observe(resp.Tenant, resp.App, resp.Latency, &w.trace, resp.CacheHit, resp.Err != nil)
		f.observe(w.shard, resp)
		j.done <- resp
	}
}

// schedule computes a placement for the job on the shared compiled model.
// Schedulers that support reusable passes (sched.PassScheduler — DEEP) run
// on a pooled Pass keyed by model, so warm scheduling allocates only the
// materialized placement map; plain ModelSchedulers run on the shared model
// with fresh scratch, and everything else falls back to the string-keyed
// Schedule path.
func (f *Fleet) schedule(w *workerState, app *dag.App, model *costmodel.Model) (sim.Placement, error) {
	if model == nil {
		// The shape was compiled without a model (non-model scheduler).
		return w.scheduler.Schedule(app, w.cluster)
	}
	switch s := w.scheduler.(type) {
	case sched.PassScheduler:
		p := w.passes[model]
		if p == nil {
			if len(w.passes) >= passPoolCap {
				evictOnePoolEntry(w.passes)
			}
			p = sched.NewPass(model)
			w.passes[model] = p
		}
		if err := s.ScheduleInto(p); err != nil {
			return nil, err
		}
		return p.Placement(), nil
	case sched.ModelScheduler:
		return s.ScheduleModel(model)
	default:
		return w.scheduler.Schedule(app, w.cluster)
	}
}

// shape returns the request's compiled model and executor plan from the
// fleet-wide cache, compiling them on first sight of the (app, cluster)
// shape. The plan is always compiled, since every request simulates. The
// cost model is compiled only when it can pay for itself: the scheduler
// must be able to read it, and the cache must be enabled — with the cache
// disabled the model would be dead weight on placement-cache hits, so
// schedule() falls back to the string-keyed path instead (which compiles
// its own transient model per miss, the pre-cache behavior). The key folds
// in the worker's own cluster digest, so workers with identical clusters
// (the normal case — every worker runs Config.NewCluster) share one
// compiled shape per app, and a reconfigured cluster can never alias
// another's shapes.
func (f *Fleet) shape(w *workerState, app *dag.App, appDigest Fingerprint) compiledShape {
	_, modelScheduler := w.scheduler.(sched.ModelScheduler)
	needModel := modelScheduler && f.models.enabled()
	return f.models.getOrCompile(w.dig.fingerprint(w.clusterDigest, appDigest, ""), func() compiledShape {
		// Cross-product passes only: the cluster-side tables come
		// precompiled from the worker's shared cluster table and the
		// app-side structure from the digest-keyed shared app table, so a
		// cold shape pays neither the O(devices²) topology scans nor the
		// DAG validation walks — one fused pricing walk emits the model
		// and the plan together.
		at := f.models.appTableFor(appDigest, func() *appgraph.AppTable {
			return appgraph.Compile(app)
		})
		var s compiledShape
		if needModel {
			s.model, s.plan = costmodel.CompileShapeOn(at, w.cluster, w.table)
		} else {
			s.plan = sim.CompilePlanOnTables(at, w.cluster, w.table)
		}
		return s
	})
}

// planFor resolves the shared plan against the worker's own cluster: the
// compiled tables stay shared, but the device handles (whose layer caches
// the Exec drives and flushes) must be the worker's private ones. The
// rebinding is memoized per shared plan; a plan already bound to this
// worker's cluster (the shape cache disabled, or this worker compiled it)
// passes through untouched.
func (w *workerState) planFor(app *dag.App, shared *sim.Plan) *sim.Plan {
	if bound, ok := w.plans[shared]; ok {
		return bound
	}
	bound, ok := shared.Rebind(w.cluster)
	if !ok {
		// Shape mismatch (cannot happen while keys fold the cluster digest
		// in): fall back to a private compilation.
		bound = sim.CompilePlan(app, w.cluster)
	}
	if bound == shared {
		return shared
	}
	if len(w.plans) >= passPoolCap {
		evictOnePoolEntry(w.plans)
	}
	w.plans[shared] = bound
	return bound
}

// process runs the (possibly memoized) schedule-then-simulate pipeline for
// one job on the worker's private scheduler and cluster, stamping each
// stage's wall time into the worker's reusable trace as it goes. In steady
// state — shape cache hot, placement memoized or pass pooled, layer caches
// warm — the whole path allocates only the response plumbing and the
// caller-owned placement and result copies; the stamping itself is
// monotonic-clock reads into a fixed array, alloc-free.
func (f *Fleet) process(w *workerState, j *job) *Response {
	start := time.Now()
	w.trace.Reset()
	w.trace.D[obs.StageQueue] = start.Sub(j.enqueued)
	resp := &Response{
		Tenant:    j.req.Tenant,
		App:       j.req.App.Name,
		QueueWait: w.trace.D[obs.StageQueue],
	}

	appDigest := w.dig.appDigest(j.req.App)
	key := w.dig.fingerprint(w.clusterDigest, appDigest, w.scheduler.Name())
	mark := time.Now()
	w.trace.D[obs.StageFingerprint] = mark.Sub(start)

	shape := f.shape(w, j.req.App, appDigest)
	now := time.Now()
	w.trace.D[obs.StageCompile] = now.Sub(mark)
	mark = now

	placement, hit := f.cache.Get(key)
	now = time.Now()
	w.trace.D[obs.StageCacheLookup] = now.Sub(mark)
	mark = now
	if !hit {
		var err error
		placement, err = f.schedule(w, j.req.App, shape.model)
		if err == nil {
			f.cache.Put(key, placement)
		}
		now = time.Now()
		w.trace.D[obs.StageSchedule] = now.Sub(mark)
		mark = now
		if err != nil {
			resp.Err = fmt.Errorf("fleet: scheduling %s: %w", j.req.App.Name, err)
			return f.finish(w, resp, j)
		}
	}
	resp.CacheHit = hit
	resp.Placement = placement

	opts := f.cfg.SimOptions
	opts.Seed += j.req.Seed
	result, err := w.exec.Run(w.planFor(j.req.App, shape.plan), placement, opts)
	w.trace.D[obs.StageSim] = time.Since(mark)
	if err != nil {
		resp.Err = fmt.Errorf("fleet: simulating %s: %w", j.req.App.Name, err)
		return f.finish(w, resp, j)
	}
	// The exec's result buffer is reused on the next request; the response
	// escapes to the submitter, so it gets a detached copy.
	resp.Result = result.Clone()
	return f.finish(w, resp, j)
}

// finish closes out a response: end-to-end latency and the stage breakdown
// copied off the worker's reusable trace.
func (f *Fleet) finish(w *workerState, resp *Response, j *job) *Response {
	resp.Latency = time.Since(j.enqueued)
	resp.Stages = w.trace
	return resp
}

// tenantLabels caches one tenant's resolved instrument handles so the
// per-request observe path is a handful of sharded atomic writes — no label
// concatenation and no registry lookups after first sight of the tenant.
// The instrument names follow the monitor convention (name{tenant=...}), so
// the same aggregates are readable through Metrics().Counter and rendered
// as labeled Prometheus families.
type tenantLabels struct {
	failed    *obs.Counter
	completed *obs.Counter
	cacheHits *obs.Counter
	latency   *obs.Histogram
	queueWait *obs.Histogram
	makespan  *obs.Histogram
	energy    *obs.Histogram
}

// tenantLabelCap bounds the interned label set: past it, labels for new
// tenants are resolved transiently instead of cached, so a submitter
// churning through unbounded tenant names cannot grow worker memory without
// bound. (The instruments themselves still intern in the registry; the cap
// only bounds this lookup-avoidance layer.)
const tenantLabelCap = 1024

// labelsFor returns the tenant's resolved instrument handles.
func (f *Fleet) labelsFor(tenant string) *tenantLabels {
	if v, ok := f.labels.Load(tenant); ok {
		return v.(*tenantLabels)
	}
	reg := f.cfg.Metrics.Obs()
	l := &tenantLabels{
		failed:    reg.Counter("fleet_failed{tenant=" + tenant + "}"),
		completed: reg.Counter("fleet_completed{tenant=" + tenant + "}"),
		cacheHits: reg.Counter("fleet_cache_hits{tenant=" + tenant + "}"),
		latency:   reg.Histogram("fleet_latency_s{tenant=" + tenant + "}"),
		queueWait: reg.Histogram("fleet_queue_wait_s{tenant=" + tenant + "}"),
		makespan:  reg.Histogram("fleet_makespan_s{tenant=" + tenant + "}"),
		energy:    reg.Histogram("fleet_energy_j{tenant=" + tenant + "}"),
	}
	if f.labelCount.Load() >= tenantLabelCap {
		return l // transient: the intern set is full
	}
	v, loaded := f.labels.LoadOrStore(tenant, l)
	if !loaded {
		f.labelCount.Add(1)
	}
	return v.(*tenantLabels)
}

// observe folds one response into the per-tenant aggregates on the worker's
// own shard.
func (f *Fleet) observe(shard int, resp *Response) {
	l := f.labelsFor(resp.Tenant)
	if resp.Err != nil {
		l.failed.AddAt(shard, 1)
		return
	}
	l.completed.AddAt(shard, 1)
	if resp.CacheHit {
		l.cacheHits.AddAt(shard, 1)
	}
	l.latency.ObserveAt(shard, resp.Latency.Seconds())
	l.queueWait.ObserveAt(shard, resp.QueueWait.Seconds())
	l.makespan.ObserveAt(shard, resp.Result.Makespan)
	l.energy.ObserveAt(shard, float64(resp.Result.TotalEnergy))
}
