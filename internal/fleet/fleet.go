// Package fleet is DEEP's multi-tenant deployment service: it turns the
// single-shot Figure 1 pipeline (schedule one app, simulate it, report) into
// a throughput machine. Deployment requests enter a bounded admission queue
// with backpressure, fan out to a pool of scheduler workers, and have their
// placements memoized in a concurrency-safe LRU keyed by a canonical
// fingerprint of (app DAG, cluster, scheduler) — the Nash best-response
// iteration is deterministic, so repeated shapes skip the game entirely.
// The package also ships an open-loop traffic driver (Poisson, bursty, and
// diurnal arrival processes over configurable application mixes) for
// scenario sweeps far beyond the paper's two case studies.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/monitor"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/workload"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity; the request was rejected, not enqueued.
	ErrQueueFull = errors.New("fleet: admission queue full")
	// ErrClosed is returned by Submit after Close began.
	ErrClosed = errors.New("fleet: closed")
)

// Config tunes a Fleet.
type Config struct {
	// Workers is the scheduler/simulator pool size (default 1). Each worker
	// owns a private scheduler instance and a private cluster, so workers
	// never contend on scheduler state or device layer caches.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A Submit against
	// a full queue is rejected with ErrQueueFull and counted.
	QueueDepth int
	// NewScheduler constructs one scheduler per worker (default
	// sched.NewDEEP). Any method from sched.All works.
	NewScheduler func() sched.Scheduler
	// NewCluster constructs one cluster per worker (default
	// workload.Testbed). Workers need private clusters because simulation
	// mutates device layer caches.
	NewCluster func() *sim.Cluster
	// CacheSize bounds the placement LRU in entries. Zero means the
	// default of 1024; a negative value disables placement memoization.
	CacheSize int
	// ModelCacheSize bounds the fleet-wide shared compiled-model cache in
	// entries. Zero means the default of 256; a negative value disables
	// model sharing (every placement-cache miss recompiles). Unlike the
	// placement cache it is keyed by (app, cluster) only, so one compiled
	// model serves every scheduler and every worker on the same shape, with
	// a singleflight fill deduplicating concurrent compilations.
	ModelCacheSize int
	// SimOptions apply to every simulation run; per-request seeds are
	// folded in on top.
	SimOptions sim.Options
	// Metrics receives per-tenant aggregates (default: a fresh registry).
	Metrics *monitor.Metrics
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.NewScheduler == nil {
		c.NewScheduler = func() sched.Scheduler { return sched.NewDEEP() }
	}
	if c.NewCluster == nil {
		c.NewCluster = workload.Testbed
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.ModelCacheSize == 0 {
		c.ModelCacheSize = defaultModelCacheSize
	}
	if c.Metrics == nil {
		c.Metrics = monitor.NewMetrics()
	}
	return c
}

// Request is one tenant's deployment request.
type Request struct {
	// Tenant labels the requester for per-tenant aggregation (default
	// "default").
	Tenant string
	// App is the application to deploy.
	App *dag.App
	// Seed perturbs this request's simulation jitter (combined with
	// Config.SimOptions).
	Seed int64
}

// Response is the outcome of one deployment request.
type Response struct {
	Tenant    string
	App       string
	Placement sim.Placement
	Result    *sim.Result
	// CacheHit is true when the placement came from the memo instead of a
	// scheduling pass.
	CacheHit bool
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
	// Latency is the end-to-end service time (queue wait + scheduling +
	// simulation).
	Latency time.Duration
	// Err is non-nil when scheduling or simulation failed.
	Err error
}

// Stats is a point-in-time view of the fleet's counters.
type Stats struct {
	Submitted  int64           `json:"submitted"`
	Rejected   int64           `json:"rejected"`
	Completed  int64           `json:"completed"`
	Failed     int64           `json:"failed"`
	InFlight   int64           `json:"in_flight"`
	Cache      CacheStats      `json:"cache"`
	ModelCache ModelCacheStats `json:"model_cache"`
}

// Fleet is a concurrent multi-tenant deployment service. Create with New,
// submit with Submit or Do, stop with Close.
type Fleet struct {
	cfg    Config
	cache  *placementCache
	models *sharedModelCache
	queue  chan *job

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	inFlight  atomic.Int64
}

type job struct {
	req      Request
	enqueued time.Time
	done     chan *Response
}

// New starts a fleet with the given config, spinning up the worker pool.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:    cfg,
		cache:  newPlacementCache(cfg.CacheSize),
		models: newSharedModelCache(cfg.ModelCacheSize),
		queue:  make(chan *job, cfg.QueueDepth),
	}
	f.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go f.worker()
	}
	return f
}

// Metrics returns the registry receiving per-tenant aggregates.
func (f *Fleet) Metrics() *monitor.Metrics { return f.cfg.Metrics }

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	return Stats{
		Submitted:  f.submitted.Load(),
		Rejected:   f.rejected.Load(),
		Completed:  f.completed.Load(),
		Failed:     f.failed.Load(),
		InFlight:   f.inFlight.Load(),
		Cache:      f.cache.Stats(),
		ModelCache: f.models.Stats(),
	}
}

// Submit enqueues a request without blocking. The returned channel delivers
// exactly one Response when the request completes. A full queue rejects the
// request with ErrQueueFull; a closed fleet rejects with ErrClosed.
func (f *Fleet) Submit(req Request) (<-chan *Response, error) {
	if req.App == nil {
		return nil, fmt.Errorf("fleet: request without app")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	j := &job{req: req, enqueued: time.Now(), done: make(chan *Response, 1)}

	// The read lock lets many submitters race each other but excludes
	// Close, so a send can never hit a closed channel.
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case f.queue <- j:
		f.submitted.Add(1)
		f.inFlight.Add(1)
		return j.done, nil
	default:
		f.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Do submits a request and blocks for its response (or ctx cancellation).
func (f *Fleet) Do(ctx context.Context, req Request) (*Response, error) {
	ch, err := f.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission and drains: every request already accepted is
// completed before Close returns. Safe to call more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	close(f.queue)
	f.mu.Unlock()
	f.wg.Wait()
}

// workerState is the per-worker context: a private scheduler and cluster
// (simulation mutates device layer caches) plus the cluster digest computed
// once. Compiled cost models live in the fleet-wide shared cache, not here:
// hot tenants compile once per fleet rather than once per worker.
type workerState struct {
	scheduler     sched.Scheduler
	cluster       *sim.Cluster
	clusterDigest ClusterDigest
}

// defaultModelCacheSize bounds the fleet-wide compiled-model cache. Models
// are a few dense arrays each; 256 covers the distinct shapes of a large
// multi-tenant mix without unbounded growth.
const defaultModelCacheSize = 256

// worker owns one scheduler and one cluster and processes jobs until the
// queue closes.
func (f *Fleet) worker() {
	defer f.wg.Done()
	cluster := f.cfg.NewCluster()
	w := &workerState{
		scheduler:     f.cfg.NewScheduler(),
		cluster:       cluster,
		clusterDigest: DigestCluster(cluster),
	}
	for j := range f.queue {
		resp := f.process(w, j)
		f.inFlight.Add(-1)
		if resp.Err != nil {
			f.failed.Add(1)
		} else {
			f.completed.Add(1)
		}
		f.observe(resp)
		j.done <- resp
	}
}

// schedule computes a placement for the job. Schedulers that run on
// compiled models share them through the fleet-wide cache: the model key
// folds in the worker's own cluster digest, so workers with identical
// clusters (the normal case — every worker runs Config.NewCluster) share
// one compiled model per app shape, and a reconfigured cluster can never
// alias another's models.
func (f *Fleet) schedule(w *workerState, app *dag.App) (sim.Placement, error) {
	ms, ok := w.scheduler.(sched.ModelScheduler)
	if !ok {
		return w.scheduler.Schedule(app, w.cluster)
	}
	model := f.models.getOrCompile(w.clusterDigest.ModelKey(app), func() *costmodel.Model {
		return costmodel.Compile(app, w.cluster)
	})
	return ms.ScheduleModel(model)
}

// process runs the (possibly memoized) schedule-then-simulate pipeline for
// one job on the worker's private scheduler and cluster.
func (f *Fleet) process(w *workerState, j *job) *Response {
	start := time.Now()
	resp := &Response{
		Tenant:    j.req.Tenant,
		App:       j.req.App.Name,
		QueueWait: start.Sub(j.enqueued),
	}

	key := w.clusterDigest.Fingerprint(j.req.App, w.scheduler.Name())
	placement, hit := f.cache.Get(key)
	if !hit {
		var err error
		placement, err = f.schedule(w, j.req.App)
		if err != nil {
			resp.Err = fmt.Errorf("fleet: scheduling %s: %w", j.req.App.Name, err)
			resp.Latency = time.Since(j.enqueued)
			return resp
		}
		f.cache.Put(key, placement)
	}
	resp.CacheHit = hit
	resp.Placement = placement

	opts := f.cfg.SimOptions
	opts.Seed += j.req.Seed
	result, err := sim.Run(j.req.App, w.cluster, placement, opts)
	if err != nil {
		resp.Err = fmt.Errorf("fleet: simulating %s: %w", j.req.App.Name, err)
		resp.Latency = time.Since(j.enqueued)
		return resp
	}
	resp.Result = result
	resp.Latency = time.Since(j.enqueued)
	return resp
}

// observe folds one response into the per-tenant aggregates.
func (f *Fleet) observe(resp *Response) {
	m := f.cfg.Metrics
	tenant := resp.Tenant
	if resp.Err != nil {
		m.Inc("fleet_failed{tenant="+tenant+"}", 1)
		return
	}
	m.Inc("fleet_completed{tenant="+tenant+"}", 1)
	if resp.CacheHit {
		m.Inc("fleet_cache_hits{tenant="+tenant+"}", 1)
	}
	m.Observe("fleet_latency_s{tenant="+tenant+"}", resp.Latency.Seconds())
	m.Observe("fleet_queue_wait_s{tenant="+tenant+"}", resp.QueueWait.Seconds())
	m.Observe("fleet_makespan_s{tenant="+tenant+"}", resp.Result.Makespan)
	m.Observe("fleet_energy_j{tenant="+tenant+"}", float64(resp.Result.TotalEnergy))
}
