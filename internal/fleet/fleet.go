// Package fleet is DEEP's multi-tenant deployment service: it turns the
// single-shot Figure 1 pipeline (schedule one app, simulate it, report) into
// a throughput machine. Deployment requests enter a bounded admission queue
// with backpressure, fan out to a pool of scheduler workers, and have their
// placements memoized in a concurrency-safe LRU keyed by a canonical
// fingerprint of (app DAG, cluster, scheduler) — the Nash best-response
// iteration is deterministic, so repeated shapes skip the game entirely.
// The package also ships an open-loop traffic driver (Poisson, bursty, and
// diurnal arrival processes over configurable application mixes) for
// scenario sweeps far beyond the paper's two case studies.
package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"deep/internal/appgraph"
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/monitor"
	"deep/internal/netsim"
	"deep/internal/obs"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/workload"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity; the request was rejected, not enqueued.
	ErrQueueFull = errors.New("fleet: admission queue full")
	// ErrClosed is returned by Submit after Close began.
	ErrClosed = errors.New("fleet: closed")
	// ErrDeadline is wrapped into a Response.Err when the request's deadline
	// expired before its placement could be scheduled or simulated.
	ErrDeadline = errors.New("fleet: deadline exceeded")
)

// Config tunes a Fleet.
type Config struct {
	// Workers is the scheduler/simulator pool size (default 1). Each worker
	// owns a private scheduler instance and a private cluster, so workers
	// never contend on scheduler state or device layer caches.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A Submit against
	// a full queue is rejected with ErrQueueFull and counted. The depth is
	// split across QueueShards bounded queues (rounding the per-shard
	// capacity up, so the aggregate QueueCap may slightly exceed this).
	QueueDepth int
	// QueueShards is the number of independent admission queues (default
	// min(Workers, GOMAXPROCS)). Submitters pick a shard by hashing
	// (tenant, app name) — the same keys that dominate the request
	// fingerprint — so a hot tenant's requests land on one worker's home
	// shard and keep its digester, pass pool, and the 8-way model cache
	// shard warm. Workers drain their home shard first and work-steal from
	// siblings, so skewed tenant traffic can never strand idle workers. On
	// a single-core box the default collapses to one shard — exactly the
	// pre-sharding queue.
	QueueShards int
	// NewScheduler constructs one scheduler per worker (default
	// sched.NewDEEP). Any method from sched.All works.
	NewScheduler func() sched.Scheduler
	// NewCluster constructs one cluster per worker (default
	// workload.Testbed). Workers need private clusters because simulation
	// mutates device layer caches.
	NewCluster func() *sim.Cluster
	// CacheSize bounds the placement LRU in entries. Zero means the
	// default of 1024; a negative value disables placement memoization.
	CacheSize int
	// ModelCacheSize bounds the fleet-wide shared compiled-shape cache
	// (cost model + simulator plan) in entries. Zero means the default of
	// 256; a negative value disables sharing — every request then compiles
	// a transient simulator plan, and every placement-cache miss a
	// transient cost model. Unlike the placement cache it is keyed by
	// (app, cluster) only, so one compiled shape serves every scheduler
	// and every worker on the same request shape, with a singleflight fill
	// deduplicating concurrent compilations.
	ModelCacheSize int
	// SimOptions apply to every simulation run; per-request seeds are
	// folded in on top. A fleet is a long-lived service, so by default
	// SimOptions.WarmCaches is forced on — device layer caches persist
	// across requests, the way a real cluster's image caches do. Set
	// ColdCaches to keep whatever WarmCaches value this carries.
	SimOptions sim.Options
	// ColdCaches opts out of the warm-cache default: when true, SimOptions
	// is taken verbatim (its zero value flushes every device layer cache
	// before each run — the one-shot benchmarking behavior, not what a
	// long-lived service wants).
	ColdCaches bool
	// Metrics receives per-tenant aggregates (default: a fresh registry).
	// Its backing obs registry (Metrics.Obs) also carries the fleet's
	// per-stage latency histograms and point-in-time gauges, so rendering
	// that one registry exposes the whole fleet.
	Metrics *monitor.Metrics
	// SlowThreshold fixes the slow-request capture bar: any request slower
	// than this has its full stage breakdown kept in the slow-request
	// ring. Zero (the default) makes the bar rolling — periodically
	// retuned to the current p99 of the request-latency histogram, so the
	// ring tracks the slowest ~1% as load shifts.
	SlowThreshold time.Duration
	// SlowRingSize bounds the slow-request ring in entries. Zero means the
	// default of 64; a negative value disables slow-request capture.
	SlowRingSize int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.QueueShards <= 0 {
		c.QueueShards = c.Workers
		if p := runtime.GOMAXPROCS(0); p < c.QueueShards {
			c.QueueShards = p
		}
		if c.QueueShards < 1 {
			c.QueueShards = 1
		}
	}
	if c.NewScheduler == nil {
		c.NewScheduler = func() sched.Scheduler { return sched.NewDEEP() }
	}
	if c.NewCluster == nil {
		c.NewCluster = workload.Testbed
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.ModelCacheSize == 0 {
		c.ModelCacheSize = defaultModelCacheSize
	}
	if !c.ColdCaches {
		c.SimOptions.WarmCaches = true
	}
	if c.Metrics == nil {
		c.Metrics = monitor.NewMetrics()
	}
	if c.SlowRingSize == 0 {
		c.SlowRingSize = defaultSlowRingSize
	}
	return c
}

// defaultSlowRingSize bounds the slow-request ring: enough tail outliers to
// explain an incident, small enough to be memory-irrelevant.
const defaultSlowRingSize = 64

// Request is one tenant's deployment request.
type Request struct {
	// Tenant labels the requester for per-tenant aggregation (default
	// "default").
	Tenant string
	// App is the application to deploy.
	App *dag.App
	// Seed perturbs this request's simulation jitter (combined with
	// Config.SimOptions).
	Seed int64
	// Deadline bounds the request's total service time, measured from
	// enqueue. A request whose deadline expires before scheduling or
	// simulation fails with ErrDeadline; deadline pressure also steers
	// schedulable requests onto the degraded (best-response) ladder rung
	// when the exact game is expected to blow the budget. Zero means no
	// deadline.
	Deadline time.Duration
}

// Response is the outcome of one deployment request.
//
// Responses are pool-managed: the fleet recycles the response, its Result
// buffers, and the job plumbing that carried it once the receiver calls
// Release. Until Release, every field is the receiver's to read; after
// Release, none may be touched — copy Placement (Materialize) or Result
// (Clone) first to keep them. Calling Release is optional (an unreleased
// response is simply garbage collected, at the cost of a pool miss later),
// but the warm path only stays allocation-free when responses are returned.
type Response struct {
	Tenant string
	App    string
	// Placement is the indexed view of the placement; on a cache hit it
	// aliases the memo's immutable compiled entry, so serving it allocates
	// nothing. Valid until Release.
	Placement PlacementView
	// Result points at a pool-owned buffer, valid until Release; nil when
	// Err is set.
	Result *sim.Result
	// CacheHit is true when the placement came from the memo instead of a
	// scheduling pass.
	CacheHit bool
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
	// Latency is the end-to-end service time (queue wait + scheduling +
	// simulation).
	Latency time.Duration
	// Stages is the per-stage wall-time breakdown of this request (queue
	// wait, fingerprint, shape compile, placement-cache lookup, schedule,
	// simulate). Stages past a failure point are zero; under churn retries
	// the compile/lookup/schedule stages accumulate across attempts.
	Stages obs.StageTrace
	// Epoch is the cluster epoch this response's placement was validated
	// against: the placement references no device or registry that was down
	// at that epoch.
	Epoch int64
	// Degraded is true when the placement came from the best-response
	// fallback instead of the exact scheduler (deadline pressure or churn
	// retry).
	Degraded bool
	// Index is the request's position within its SubmitBatch call; 0 for
	// single-request submissions.
	Index int
	// Err is non-nil when scheduling or simulation failed.
	Err error

	// owner is the pooled job this response recycles on Release; nil for
	// responses the pool does not manage (test fixtures) and after Release.
	owner *job
	// pooled stays true after Release so race builds can detect a double
	// Release (owner alone cannot distinguish released from unmanaged).
	pooled bool
}

// Release returns the response and its job plumbing to the fleet's pool.
// After Release the response, its Placement view, and its Result must not be
// touched: the buffers will be overwritten by a future request. Releasing a
// response the pool does not manage is a no-op; releasing the same response
// twice is a caller bug that panics under the race detector (and is ignored
// in normal builds — by the second call the job may already be live again,
// so corrupting it quietly would be far worse than the leak).
func (r *Response) Release() {
	j := r.owner
	if j == nil {
		if raceEnabled && r.pooled {
			panic("fleet: Response released twice")
		}
		return
	}
	r.owner = nil
	j.f.putJob(j)
}

// Stats is a point-in-time view of the fleet's counters.
type Stats struct {
	Submitted  int64           `json:"submitted"`
	Rejected   int64           `json:"rejected"`
	Completed  int64           `json:"completed"`
	Failed     int64           `json:"failed"`
	InFlight   int64           `json:"in_flight"`
	Cache      CacheStats      `json:"cache"`
	ModelCache ModelCacheStats `json:"model_cache"`
	Churn      ChurnStats      `json:"churn"`
}

// Fleet is a concurrent multi-tenant deployment service. Create with New,
// submit with Submit or Do, stop with Close.
type Fleet struct {
	cfg    Config
	cache  *placementCache
	models *sharedModelCache
	// queues are the sharded bounded admission queues (Config.QueueShards).
	// Submitters enqueue on their hash-picked home shard and spill over to
	// siblings when it is full; workers drain home-first and steal. queued
	// tracks the aggregate backlog in requests (a batch counts each item),
	// which is what serving layers size Retry-After hints from.
	queues []chan *job
	queued atomic.Int64
	qcap   int
	// jobPool recycles the whole per-request chain — job, Response, Result
	// buffers, placement-view scratch, and the cap-1 done channel — via the
	// Response.Release contract. A job re-enters the pool only after its
	// response was released, which proves the done channel was drained, so
	// reusing the channel can never cross-deliver between submitters.
	jobPool sync.Pool

	// Telemetry, interned in the Metrics' backing obs registry: per-stage
	// latency histograms, the end-to-end request-latency histogram the
	// rolling slow threshold reads, and the slow-request ring. Workers
	// record on their own shard, so instrumentation adds no shared cache
	// lines (and no allocations) to the request path.
	stages  *obs.StageSet
	latency *obs.Histogram
	slow    *obs.SlowRing

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	// labels interns per-tenant metric names, capped at tenantLabelCap
	// entries; past the cap new tenants share overflowLabels (see
	// labelsFor).
	labels         sync.Map
	labelCount     atomic.Int64
	overflowLabels *tenantLabels

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	inFlight  atomic.Int64

	// Churn machinery. base is the fleet's canonical cluster (one more
	// Config.NewCluster call, made lazily by the first ApplyChurn) whose
	// device handles intern every churn epoch's patched table;
	// baseTable/baseDigest are its compiled substrate and digest, shared
	// through the model cache with workers whose private clusters digest
	// identically. All three are written under churnMu and published to
	// workers through the churn pointer's release/acquire edge. chaosTopo
	// is a lazy clone of the base topology that accumulates link
	// degradations (mutated only under churnMu; the base topology is never
	// touched, so restores read base bandwidths). churn is the published
	// epoch state workers adopt with one atomic load per request.
	base       *sim.Cluster
	baseDigest ClusterDigest
	baseTable  *topo.ClusterTable
	churnMu    sync.Mutex
	chaosTopo  *netsim.Topology
	churn      atomic.Pointer[churnState]

	churnEpochs      atomic.Int64
	churnInvalidated atomic.Int64
	shapesPurged     atomic.Int64
	staleRejected    atomic.Int64
	reschedules      atomic.Int64
	downgrades       atomic.Int64
	deadlineExceeded atomic.Int64
}

type job struct {
	f        *Fleet
	req      Request
	enqueued time.Time
	done     chan *Response
	// ctx is the submitter's context when it came through SubmitCtx (nil
	// from plain Submit): a request whose submitter has already given up is
	// answered with its context error instead of being scheduled.
	ctx context.Context

	// Batch plumbing: a non-nil items marks a batch head occupying one
	// queue slot for the whole batch; items[0] is the head itself, and
	// every item's response is delivered on the shared bdone channel
	// (capacity len(items)) in submission order. Workers copy both fields
	// into locals before processing: an early item's response can be
	// received and Released — recycling its job, the head included — while
	// later items are still being scheduled.
	items []*job
	bdone chan *Response

	// Pool-owned response buffers, recycled by Response.Release: the
	// response itself, the detached copy of the Exec's result, and the
	// scratch backing cache-miss placement views. In steady state a request
	// touches none of the allocator.
	resp    Response
	result  sim.Result
	names   []string
	assigns []sim.Assignment
}

// weight is the number of admission slots the job accounts for in QueueLen:
// each batch item counts, since each is one request a worker must serve.
func (j *job) weight() int64 {
	if j.items != nil {
		return int64(len(j.items))
	}
	return 1
}

// getJob draws a job from the pool (or mints one with its done channel).
func (f *Fleet) getJob() *job {
	j := f.jobPool.Get().(*job)
	j.f = f
	return j
}

// putJob clears a job's references and returns it to the pool. Buffers with
// reusable capacity — the result's slices and maps, the placement-view
// scratch, the done channel — are kept; everything that pins caller memory
// (the app, the context, batch plumbing, view aliases) is dropped.
func (f *Fleet) putJob(j *job) {
	j.req = Request{}
	j.ctx = nil
	j.items = nil
	j.bdone = nil
	j.enqueued = time.Time{}
	r := &j.resp
	r.Tenant, r.App = "", ""
	r.Placement = PlacementView{}
	r.Result = nil
	r.Err = nil
	r.owner = nil
	f.jobPool.Put(j)
}

// New starts a fleet with the given config, spinning up the worker pool.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:    cfg,
		cache:  newPlacementCache(cfg.CacheSize),
		models: newSharedModelCache(cfg.ModelCacheSize),
	}
	per := (cfg.QueueDepth + cfg.QueueShards - 1) / cfg.QueueShards
	f.queues = make([]chan *job, cfg.QueueShards)
	for i := range f.queues {
		f.queues[i] = make(chan *job, per)
	}
	f.qcap = per * cfg.QueueShards
	f.jobPool.New = func() any { return &job{done: make(chan *Response, 1)} }
	reg := cfg.Metrics.Obs()
	f.overflowLabels = newTenantLabels(reg, "other")
	f.stages = obs.NewStageSet(reg, "fleet_stage_seconds")
	f.latency = reg.Histogram("fleet_request_latency_s")
	f.slow = obs.NewSlowRing(cfg.SlowRingSize, cfg.SlowThreshold, f.latency)
	reg.OnCollect(f.collectGauges)
	// Epoch 0 is the pristine pre-churn state: nil table and digest mean
	// "every worker keeps its own substrate". The fleet's canonical base
	// cluster is built lazily on the first ApplyChurn (ensureBase), so a
	// fleet that never churns never pays for it.
	f.churn.Store(&churnState{})
	f.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go f.worker(i)
	}
	return f
}

// collectGauges publishes the fleet's point-in-time counters as gauges in
// the obs registry; it runs on every exposition pass (Prometheus scrape,
// expvar read), so /metrics always reflects the live admission and cache
// state without any per-request cost.
func (f *Fleet) collectGauges() {
	reg := f.cfg.Metrics.Obs()
	s := f.Stats()
	reg.Gauge("fleet_requests_submitted").Set(float64(s.Submitted))
	reg.Gauge("fleet_requests_rejected").Set(float64(s.Rejected))
	reg.Gauge("fleet_requests_completed").Set(float64(s.Completed))
	reg.Gauge("fleet_requests_failed").Set(float64(s.Failed))
	reg.Gauge("fleet_requests_in_flight").Set(float64(s.InFlight))
	reg.Gauge("fleet_placement_cache_hits").Set(float64(s.Cache.Hits))
	reg.Gauge("fleet_placement_cache_misses").Set(float64(s.Cache.Misses))
	reg.Gauge("fleet_placement_cache_evictions").Set(float64(s.Cache.Evictions))
	reg.Gauge("fleet_placement_cache_entries").Set(float64(s.Cache.Entries))
	reg.Gauge("fleet_shape_cache_hits").Set(float64(s.ModelCache.Hits))
	reg.Gauge("fleet_shape_cache_misses").Set(float64(s.ModelCache.Misses))
	reg.Gauge("fleet_shape_cache_compiles").Set(float64(s.ModelCache.Compiles))
	reg.Gauge("fleet_cluster_table_compiles").Set(float64(s.ModelCache.ClusterCompiles))
	reg.Gauge("fleet_app_table_compiles").Set(float64(s.ModelCache.AppCompiles))
	reg.Gauge("fleet_app_table_entries").Set(float64(s.ModelCache.AppEntries))
	reg.Gauge("fleet_slow_requests_captured").Set(float64(f.slow.Captured()))
	reg.Gauge("fleet_slow_threshold_s").Set(f.slow.Threshold().Seconds())
	reg.Gauge("fleet_churn_epoch").Set(float64(s.Churn.Epoch))
	reg.Gauge("fleet_churn_down_devices").Set(float64(s.Churn.DownDevices))
	reg.Gauge("fleet_churn_down_registries").Set(float64(s.Churn.DownRegistries))
	reg.Gauge("fleet_churn_degraded_links").Set(float64(s.Churn.DegradedLinks))
	reg.Gauge("fleet_churn_epochs_applied").Set(float64(s.Churn.EpochsApplied))
	reg.Gauge("fleet_churn_invalidated").Set(float64(s.Churn.Invalidated))
	reg.Gauge("fleet_churn_shapes_purged").Set(float64(s.Churn.ShapesPurged))
	reg.Gauge("fleet_churn_stale_rejected").Set(float64(s.Churn.StaleRejected))
	reg.Gauge("fleet_churn_reschedules").Set(float64(s.Churn.Reschedules))
	reg.Gauge("fleet_churn_downgrades").Set(float64(s.Churn.Downgrades))
	reg.Gauge("fleet_churn_deadline_exceeded").Set(float64(s.Churn.DeadlineExceeded))
}

// SlowRequests returns the slow-request ring's current contents, oldest
// first: the full stage breakdown of every captured tail outlier.
func (f *Fleet) SlowRequests() []obs.SlowRequest { return f.slow.Snapshot() }

// StageHistogram exposes one stage's live histogram (for tests and custom
// exposition); the same instruments are rendered by Metrics().Obs().
func (f *Fleet) StageHistogram(s obs.Stage) *obs.Histogram { return f.stages.Histogram(s) }

// Metrics returns the registry receiving per-tenant aggregates.
func (f *Fleet) Metrics() *monitor.Metrics { return f.cfg.Metrics }

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	st := f.churn.Load()
	return Stats{
		Submitted:  f.submitted.Load(),
		Rejected:   f.rejected.Load(),
		Completed:  f.completed.Load(),
		Failed:     f.failed.Load(),
		InFlight:   f.inFlight.Load(),
		Cache:      f.cache.Stats(),
		ModelCache: f.models.Stats(),
		Churn: ChurnStats{
			Epoch:            st.epoch,
			DownDevices:      len(st.downDevs),
			DownRegistries:   len(st.downRegs),
			DegradedLinks:    len(st.degraded),
			EpochsApplied:    f.churnEpochs.Load(),
			Invalidated:      f.churnInvalidated.Load(),
			ShapesPurged:     f.shapesPurged.Load(),
			StaleRejected:    f.staleRejected.Load(),
			Reschedules:      f.reschedules.Load(),
			Downgrades:       f.downgrades.Load(),
			DeadlineExceeded: f.deadlineExceeded.Load(),
		},
	}
}

// shardFor hashes (tenant, app name) — FNV-1a, no allocation — onto a home
// shard. The same keys dominate the request fingerprint, so one tenant's hot
// shape keeps landing on one worker's home shard: its digester scratch, pass
// pool, and model-cache shard stay warm. The full app digest would be the
// exact affinity key, but it is a sha256 pass the submitter should not pay;
// the name is free and wrong only for same-named structurally distinct apps,
// where affinity is a performance hint, not a correctness input.
func (f *Fleet) shardFor(req *Request) int {
	n := len(f.queues)
	if n == 1 {
		return 0
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(req.Tenant); i++ {
		h = (h ^ uint64(req.Tenant[i])) * fnvPrime
	}
	h = (h ^ '/') * fnvPrime
	name := req.App.Name
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	return int(h % uint64(n))
}

// tryEnqueue offers the job to its home shard, spilling over to siblings
// when it is full: a request is only rejected when every shard is at
// capacity, so the aggregate QueueDepth bound holds regardless of hash skew.
// Must be called under f.mu.RLock with f.closed already checked.
func (f *Fleet) tryEnqueue(j *job, home int) bool {
	qs := f.queues
	n := len(qs)
	for i := 0; i < n; i++ {
		select {
		case qs[(home+i)%n] <- j:
			f.queued.Add(j.weight())
			return true
		default:
		}
	}
	return false
}

// Submit enqueues a request without blocking. The returned channel delivers
// exactly one Response when the request completes. A full queue rejects the
// request with ErrQueueFull; a closed fleet rejects with ErrClosed.
func (f *Fleet) Submit(req Request) (<-chan *Response, error) {
	if req.App == nil {
		return nil, fmt.Errorf("fleet: request without app")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	j := f.getJob()
	j.req = req
	j.enqueued = time.Now()

	// The read lock lets many submitters race each other but excludes
	// Close, so a send can never hit a closed channel.
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.putJob(j)
		f.rejected.Add(1)
		return nil, ErrClosed
	}
	if f.tryEnqueue(j, f.shardFor(&j.req)) {
		f.submitted.Add(1)
		f.inFlight.Add(1)
		return j.done, nil
	}
	f.putJob(j)
	f.rejected.Add(1)
	return nil, ErrQueueFull
}

// SubmitCtx enqueues a request, blocking on a full admission queue until
// space frees, the context is cancelled, or the fleet closes — the
// cooperative alternative to Submit's immediate ErrQueueFull. Cancellation
// while blocked returns ctx.Err() and counts as a rejection; once accepted,
// the request also remembers the context, so a submitter that gives up while
// its request is still queued gets the context error back instead of paying
// for a schedule.
func (f *Fleet) SubmitCtx(ctx context.Context, req Request) (<-chan *Response, error) {
	if req.App == nil {
		return nil, fmt.Errorf("fleet: request without app")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	j := f.getJob()
	j.req = req
	j.enqueued = time.Now()
	j.ctx = ctx

	// Holding the read lock across the blocking send is deadlock-free:
	// workers keep draining every shard until Close closes them, and
	// Close's write lock cannot be acquired until this send (or
	// cancellation) releases the read side — so the send always completes
	// or cancels, and can never hit a closed channel. Blocking on the home
	// shard alone is enough: work stealing guarantees it drains.
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.putJob(j)
		f.rejected.Add(1)
		return nil, ErrClosed
	}
	home := f.shardFor(&j.req)
	if f.tryEnqueue(j, home) {
		f.submitted.Add(1)
		f.inFlight.Add(1)
		return j.done, nil
	}
	select {
	case f.queues[home] <- j:
		f.queued.Add(1)
		f.submitted.Add(1)
		f.inFlight.Add(1)
		return j.done, nil
	case <-ctx.Done():
		f.putJob(j)
		f.rejected.Add(1)
		return nil, ctx.Err()
	}
}

// TrySubmitCtx enqueues a request without blocking — Submit's immediate
// ErrQueueFull backpressure — while remembering the context the way
// SubmitCtx does, so a submitter that gives up while its request is still
// queued gets the context error back instead of paying for a schedule. This
// is the serving front-end's admission call: reject-fast on overload, but
// never schedule for a caller that already hung up.
func (f *Fleet) TrySubmitCtx(ctx context.Context, req Request) (<-chan *Response, error) {
	if req.App == nil {
		return nil, fmt.Errorf("fleet: request without app")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	j := f.getJob()
	j.req = req
	j.enqueued = time.Now()
	j.ctx = ctx

	// The read lock lets many submitters race each other but excludes
	// Close, so a send can never hit a closed channel.
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.putJob(j)
		f.rejected.Add(1)
		return nil, ErrClosed
	}
	if f.tryEnqueue(j, f.shardFor(&j.req)) {
		f.submitted.Add(1)
		f.inFlight.Add(1)
		return j.done, nil
	}
	f.putJob(j)
	f.rejected.Add(1)
	return nil, ErrQueueFull
}

// SubmitBatch admits a batch of requests as one unit: one queue handoff, one
// enqueue timestamp, and one worker pass over the whole batch, with
// consecutive items that share an *dag.App pointer digested once. The
// returned channel delivers exactly len(reqs) responses in submission order,
// each tagged with its Index; every response follows the Release contract.
// Admission is all-or-nothing and non-blocking: the batch occupies a single
// shard slot, and a fleet with no free slot rejects the whole batch with
// ErrQueueFull (counting len(reqs) rejections). The context, if non-nil,
// covers every item the way TrySubmitCtx's does. The reqs slice itself is
// not retained.
func (f *Fleet) SubmitBatch(ctx context.Context, reqs []Request) (<-chan *Response, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("fleet: empty batch")
	}
	for i := range reqs {
		if reqs[i].App == nil {
			return nil, fmt.Errorf("fleet: batch request %d without app", i)
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	now := time.Now()
	items := make([]*job, len(reqs))
	for i, req := range reqs {
		if req.Tenant == "" {
			req.Tenant = "default"
		}
		it := f.getJob()
		it.req = req
		it.enqueued = now
		it.ctx = ctx
		items[i] = it
	}
	head := items[0]
	head.items = items
	head.bdone = make(chan *Response, len(reqs))

	n := int64(len(reqs))
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.recycleBatch(items)
		f.rejected.Add(n)
		return nil, ErrClosed
	}
	if !f.tryEnqueue(head, f.shardFor(&head.req)) {
		f.recycleBatch(items)
		f.rejected.Add(n)
		return nil, ErrQueueFull
	}
	f.submitted.Add(n)
	f.inFlight.Add(n)
	return head.bdone, nil
}

// recycleBatch returns a rejected batch's jobs to the pool (the head's batch
// plumbing is cleared by putJob).
func (f *Fleet) recycleBatch(items []*job) {
	for _, it := range items {
		f.putJob(it)
	}
}

// QueueLen returns the number of requests currently waiting in the admission
// queues (not yet picked up by a worker), summed across shards; each batch
// item counts as one request. Serving layers use it to derive Retry-After
// hints.
func (f *Fleet) QueueLen() int {
	if n := f.queued.Load(); n > 0 {
		return int(n)
	}
	// A worker's decrement can land between a submitter's send and its
	// increment; clamp the transient negative to empty.
	return 0
}

// QueueCap returns the aggregate admission capacity across all shards
// (QueueDepth rounded up to a multiple of QueueShards).
func (f *Fleet) QueueCap() int { return f.qcap }

// QueueShards returns the number of admission queue shards.
func (f *Fleet) QueueShards() int { return len(f.queues) }

// Workers returns the scheduler/simulator pool size.
func (f *Fleet) Workers() int { return f.cfg.Workers }

// Do submits a request and blocks for its response (or ctx cancellation).
func (f *Fleet) Do(ctx context.Context, req Request) (*Response, error) {
	ch, err := f.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission and drains: every request already accepted is
// completed before Close returns. Safe to call more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	for _, q := range f.queues {
		close(q)
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// workerState is the per-worker context: a private scheduler and cluster
// (simulation mutates device layer caches), the cluster digest computed
// once, the shared cluster table resolved once against that digest, a
// fingerprint digester with reusable scratch, a pooled simulator Exec, and a
// pool of scheduler passes keyed by compiled model. Compiled tables, models,
// and plans live in the fleet-wide shared cache, not here: hot tenants
// compile once per fleet rather than once per worker.
type workerState struct {
	scheduler     sched.Scheduler
	cluster       *sim.Cluster
	clusterDigest ClusterDigest
	// shard is this worker's obs shard index: each worker records its
	// counters and histogram observations on its own cache line.
	shard int
	// home is the admission queue shard this worker drains first; siblings
	// are stolen from only when it is empty, preserving the submit-side
	// tenant affinity. selCases is the prebuilt blocking-select set over
	// every shard (nil with one shard), used only when all shards are empty.
	home     int
	selCases []reflect.SelectCase
	// batchApp/batchDigest memoize the app digest across one batch's items
	// (valid only while inBatch): consecutive items sharing an *dag.App
	// pointer pay the sha256 pass once.
	inBatch     bool
	batchApp    *dag.App
	batchDigest Fingerprint
	// trace is the reusable per-request stage breakdown; process resets it
	// at the top of every request so failure short-circuits leave the
	// untouched stages at zero rather than at the prior request's values.
	trace obs.StageTrace
	// table is the cluster-side compiled substrate every app-side compile
	// for this worker builds on; workers with digest-identical clusters
	// (the normal case) share one, resolved through the fleet-wide cache.
	table *topo.ClusterTable
	dig   *digester
	exec  *sim.Exec

	passes map[*costmodel.Model]*sched.Pass
	// plans memoizes shared plans rebound to this worker's own cluster:
	// simulation drives (and on cold runs flushes) device layer caches, so
	// each worker must execute against its private devices even when the
	// compiled tables are shared fleet-wide.
	plans map[*sim.Plan]*sim.Plan

	// Churn adoption. churn is the last-adopted epoch state (one pointer
	// compare per request decides whether anything changed); ownDigest is
	// the private cluster's immutable digest, kept so adoption can check
	// compatibility with the fleet's base — when they differ (a
	// non-deterministic Config.NewCluster) the worker keeps its own
	// substrate and only the stale-placement gate protects it. effCluster
	// is the churn-filtered view of the private cluster handed to legacy
	// (non-model) schedulers; fallback is the lazily built best-response
	// scheduler for the degradation ladder; exactDur tracks the last exact
	// schedule's duration for deadline triage; rng seeds the retry backoff
	// jitter.
	churn      *churnState
	ownDigest  ClusterDigest
	effCluster *sim.Cluster
	fallback   sched.Scheduler
	exactDur   time.Duration
	rng        uint64
}

// adopt installs a published churn state on the worker: the patched cluster
// table, the effective digest every cache key folds in, and the filtered
// cluster view for legacy schedulers. Runs only when the epoch pointer
// changed, so the steady-state request path pays one atomic load and one
// compare. Reading the fleet's base fields here is safe without churnMu:
// they are written before the state pointer is published and read only
// after it is observed.
func (w *workerState) adopt(f *Fleet, st *churnState) {
	w.churn = st
	if st.table == nil {
		// The pristine epoch-0 state: the worker's own substrate is already
		// exactly right.
		return
	}
	if !bytes.Equal(w.ownDigest, f.baseDigest) {
		return
	}
	w.table = st.table
	w.clusterDigest = st.digest
	if len(st.downDevs) == 0 && len(st.downRegs) == 0 {
		w.effCluster = w.cluster
		return
	}
	// Filter the worker's own devices (the handles whose layer caches its
	// simulations drive). The topology is left as the private cluster's
	// base: only non-model custom schedulers read it, and link degradation
	// is advisory for them.
	eff := &sim.Cluster{
		Topology:   w.cluster.Topology,
		SourceNode: w.cluster.SourceNode,
		Layers:     w.cluster.Layers,
	}
	for _, d := range w.cluster.Devices {
		if !st.downDevs[d.Name] {
			eff.Devices = append(eff.Devices, d)
		}
	}
	for _, r := range w.cluster.Registries {
		if !st.downRegs[r.Name] {
			eff.Registries = append(eff.Registries, r)
		}
	}
	w.effCluster = eff
}

// fallbackScheduler returns the degraded-rung scheduler: DEEP with every
// pair game capped down to best-response dynamics — the cheap, always-fast
// approximation the paper's own large-stage path uses.
func (w *workerState) fallbackScheduler() sched.Scheduler {
	if w.fallback == nil {
		w.fallback = &sched.DEEP{MaxPairCells: 1}
	}
	return w.fallback
}

// defaultModelCacheSize bounds the fleet-wide compiled-shape cache. Models
// and plans are a few dense arrays each; 256 covers the distinct shapes of
// a large multi-tenant mix without unbounded growth.
const defaultModelCacheSize = 256

// passPoolCap bounds each worker's pass and rebound-plan pools. Both are
// keyed by compiled-object identity, so they normally track the shared
// shape cache; the cap matters when that cache is disabled or churning
// (fresh identities per request) and evicts one arbitrary entry per
// insertion instead of growing without bound — hot entries survive and
// evicted shared-cache objects are not pinned indefinitely.
const passPoolCap = 64

// evictOnePoolEntry drops one arbitrary entry from a pool map at capacity.
func evictOnePoolEntry[K comparable, V any](pool map[K]V) {
	for k := range pool {
		delete(pool, k)
		return
	}
}

// worker owns one scheduler and one cluster and processes jobs until the
// queue closes. The worker index doubles as the obs shard, so concurrent
// workers never contend on an instrument cache line.
func (f *Fleet) worker(i int) {
	defer f.wg.Done()
	cluster := f.cfg.NewCluster()
	w := &workerState{
		scheduler:     f.cfg.NewScheduler(),
		cluster:       cluster,
		clusterDigest: DigestCluster(cluster),
		shard:         i,
		dig:           newDigester(),
		exec:          sim.NewExec(),
		passes:        make(map[*costmodel.Model]*sched.Pass),
		plans:         make(map[*sim.Plan]*sim.Plan),
		rng:           uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
	}
	// Resolve the cluster-side compiled substrate once per worker lifetime:
	// the first worker per cluster digest compiles it, the rest share it.
	// (With a deterministic Config.NewCluster this is the fleet's own base
	// table, pre-filled in New.)
	w.table = f.models.tableFor(w.clusterDigest, func() *topo.ClusterTable {
		return sim.CompileClusterTable(cluster)
	})
	w.ownDigest = w.clusterDigest
	w.effCluster = cluster
	w.adopt(f, f.churn.Load())
	w.home = i % len(f.queues)
	if len(f.queues) > 1 {
		w.selCases = make([]reflect.SelectCase, len(f.queues))
		for k, q := range f.queues {
			w.selCases[k] = reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(q)}
		}
	}
	for {
		j := f.dequeue(w)
		if j == nil {
			return
		}
		f.queued.Add(-j.weight())
		if j.items != nil {
			f.processBatch(w, j)
			continue
		}
		resp := f.process(w, j)
		f.deliver(w, j.done, resp)
	}
}

// dequeue returns the next job for the worker, or nil when the fleet is
// closed and fully drained. The worker scans its home shard first and then
// steals from siblings (non-blocking), so submit-side affinity holds under
// load but a single hot shard fans out across the whole pool. When every
// shard is empty it blocks on all of them at once — a reflect.Select on the
// idle path only, where its allocations cost nothing that matters.
func (f *Fleet) dequeue(w *workerState) *job {
	qs := f.queues
	n := len(qs)
	if n == 1 {
		j, ok := <-qs[0]
		if !ok {
			return nil
		}
		return j
	}
	for {
		sawClosed := false
		for i := 0; i < n; i++ {
			select {
			case j, ok := <-qs[(w.home+i)%n]:
				if ok {
					return j
				}
				sawClosed = true
			default:
			}
		}
		if sawClosed {
			// Channels close only in Close, after f.closed stopped all
			// admission — so every send happened before the close we just
			// observed, and a scan that found nothing means every shard is
			// drained for good.
			return nil
		}
		if _, recv, ok := reflect.Select(w.selCases); ok {
			return recv.Interface().(*job)
		}
		// A shard closed while we were blocked: rescan to drain stragglers
		// from the other shards before exiting.
	}
}

// deliver closes out one processed request: fleet counters, the per-stage
// and per-tenant telemetry, and the response send (done is the job's own
// channel, or the shared batch channel — both buffered, so the send never
// blocks a worker).
func (f *Fleet) deliver(w *workerState, done chan<- *Response, resp *Response) {
	f.inFlight.Add(-1)
	if resp.Err != nil {
		f.failed.Add(1)
	} else {
		f.completed.Add(1)
	}
	f.stages.RecordAt(w.shard, &w.trace)
	f.latency.ObserveAt(w.shard, resp.Latency.Seconds())
	f.slow.Observe(resp.Tenant, resp.App, resp.Latency, &w.trace, resp.CacheHit, resp.Err != nil)
	f.observe(w.shard, resp)
	done <- resp
}

// processBatch serves one batch head: every item processed back to back on
// this worker, responses streamed to the shared channel in submission order.
// The head's batch fields are copied out first — an early item's response
// can be Released (recycling its job, the head included) while later items
// are still in flight.
func (f *Fleet) processBatch(w *workerState, head *job) {
	items, bdone := head.items, head.bdone
	w.inBatch = true
	for idx, item := range items {
		resp := f.process(w, item)
		resp.Index = idx
		f.deliver(w, bdone, resp)
	}
	w.inBatch = false
	w.batchApp = nil
}

// scheduleOn computes a placement for the job with the given scheduler on
// the shared compiled model. Schedulers that support reusable passes
// (sched.PassScheduler — DEEP) run on a pooled Pass keyed by model — the
// pool is scheduler-independent, so the exact scheduler and the degraded
// fallback share passes; plain ModelSchedulers run on the shared model with
// fresh scratch, and everything else falls back to the string-keyed Schedule
// path against the churn-filtered cluster view.
func (f *Fleet) scheduleOn(w *workerState, scheduler sched.Scheduler, app *dag.App, model *costmodel.Model) (sim.Placement, error) {
	if model == nil {
		// The shape was compiled without a model (non-model scheduler).
		return scheduler.Schedule(app, w.effCluster)
	}
	switch s := scheduler.(type) {
	case sched.PassScheduler:
		p := w.passes[model]
		if p == nil {
			if len(w.passes) >= passPoolCap {
				evictOnePoolEntry(w.passes)
			}
			p = sched.NewPass(model)
			w.passes[model] = p
		}
		if err := s.ScheduleInto(p); err != nil {
			return nil, err
		}
		return p.Placement(), nil
	case sched.ModelScheduler:
		return s.ScheduleModel(model)
	default:
		return scheduler.Schedule(app, w.effCluster)
	}
}

// scheduleAttempt runs one rung of the degradation ladder: the exact
// scheduler normally, or the best-response fallback when this is a churn
// retry or when the deadline cannot absorb another exact game (estimated by
// the worker's last exact schedule duration). The fallback applies only to
// PassSchedulers (the exact DEEP family) — other schedulers have no cheaper
// rung to fall to. Returns the placement and whether it is degraded.
func (f *Fleet) scheduleAttempt(w *workerState, app *dag.App, model *costmodel.Model, attempt int, deadline time.Time) (sim.Placement, bool, error) {
	if model != nil {
		if _, exact := w.scheduler.(sched.PassScheduler); exact {
			pressed := !deadline.IsZero() && w.exactDur > 0 && time.Until(deadline) < w.exactDur
			if attempt > 0 || pressed {
				p, err := f.scheduleOn(w, w.fallbackScheduler(), app, model)
				return p, err == nil, err
			}
		}
	}
	t0 := time.Now()
	p, err := f.scheduleOn(w, w.scheduler, app, model)
	if err == nil {
		w.exactDur = time.Since(t0)
	}
	return p, false, err
}

// shape returns the request's compiled model and executor plan from the
// fleet-wide cache, compiling them on first sight of the (app, cluster)
// shape. The plan is always compiled, since every request simulates. The
// cost model is compiled only when it can pay for itself: the scheduler
// must be able to read it, and the cache must be enabled — with the cache
// disabled the model would be dead weight on placement-cache hits, so
// schedule() falls back to the string-keyed path instead (which compiles
// its own transient model per miss, the pre-cache behavior). The key folds
// in the worker's own cluster digest, so workers with identical clusters
// (the normal case — every worker runs Config.NewCluster) share one
// compiled shape per app, and a reconfigured cluster can never alias
// another's shapes.
func (f *Fleet) shape(w *workerState, app *dag.App, appDigest Fingerprint) compiledShape {
	_, modelScheduler := w.scheduler.(sched.ModelScheduler)
	needModel := modelScheduler && f.models.enabled()
	return f.models.getOrCompile(w.dig.fingerprint(w.clusterDigest, appDigest, ""), w.clusterDigest, func() compiledShape {
		// Cross-product passes only: the cluster-side tables come
		// precompiled from the worker's shared cluster table and the
		// app-side structure from the digest-keyed shared app table, so a
		// cold shape pays neither the O(devices²) topology scans nor the
		// DAG validation walks — one fused pricing walk emits the model
		// and the plan together.
		at := f.models.appTableFor(appDigest, func() *appgraph.AppTable {
			return appgraph.Compile(app)
		})
		var s compiledShape
		if needModel {
			s.model, s.plan = costmodel.CompileShapeOn(at, w.cluster, w.table)
		} else {
			s.plan = sim.CompilePlanOnTables(at, w.cluster, w.table)
		}
		return s
	})
}

// planFor resolves the shared plan against the worker's own cluster: the
// compiled tables stay shared, but the device handles (whose layer caches
// the Exec drives and flushes) must be the worker's private ones. The
// rebinding is memoized per shared plan; a plan already bound to this
// worker's cluster (the shape cache disabled, or this worker compiled it)
// passes through untouched.
func (w *workerState) planFor(app *dag.App, shared *sim.Plan) *sim.Plan {
	if bound, ok := w.plans[shared]; ok {
		return bound
	}
	bound, ok := shared.Rebind(w.cluster)
	if !ok {
		// Shape mismatch (cannot happen while keys fold the cluster digest
		// in): fall back to a private compilation.
		bound = sim.CompilePlan(app, w.cluster)
	}
	if bound == shared {
		return shared
	}
	if len(w.plans) >= passPoolCap {
		evictOnePoolEntry(w.plans)
	}
	w.plans[shared] = bound
	return bound
}

// process runs the (possibly memoized) schedule-then-simulate pipeline for
// one job on the worker's private scheduler and cluster, stamping each
// stage's wall time into the worker's reusable trace as it goes. In steady
// state — shape cache hot, placement memoized or pass pooled, layer caches
// warm, no churn in flight — the whole path allocates only the response
// plumbing and the caller-owned placement and result copies; the stamping
// itself is monotonic-clock reads into a fixed array, alloc-free, and churn
// awareness costs one atomic load and one pointer compare.
//
// Under churn the path loops: every computed or cached placement is
// re-validated against the latest published epoch before it is served, and a
// placement caught referencing crashed hardware is purged and re-scheduled
// (bounded retries, jittered backoff, degraded-scheduler rung on retry).
// Stage stamps accumulate across attempts.
func (f *Fleet) process(w *workerState, j *job) *Response {
	start := time.Now()
	w.trace.Reset()
	w.trace.D[obs.StageQueue] = start.Sub(j.enqueued)
	// The response is the job's pooled buffer: reset every public field a
	// prior life may have set (finish overwrites Latency and Stages on
	// every path), wire up the Release plumbing, and keep the buffers.
	resp := &j.resp
	resp.Tenant = j.req.Tenant
	resp.App = j.req.App.Name
	resp.Placement = PlacementView{}
	resp.Result = nil
	resp.CacheHit = false
	resp.Epoch = 0
	resp.Degraded = false
	resp.Index = 0
	resp.Err = nil
	resp.QueueWait = w.trace.D[obs.StageQueue]
	resp.owner = j
	resp.pooled = true

	// A submitter that gave up while the request sat in the queue gets its
	// context error back without paying for a schedule.
	if j.ctx != nil && j.ctx.Err() != nil {
		resp.Err = j.ctx.Err()
		return f.finish(w, resp, j)
	}
	var deadline time.Time
	if j.req.Deadline > 0 {
		deadline = j.enqueued.Add(j.req.Deadline)
	}

	if st := f.churn.Load(); st != w.churn {
		w.adopt(f, st)
	}

	// One digest pass per batch run of the same app: SubmitBatch's
	// amortization. Outside a batch the memo is off — a caller could in
	// principle mutate an app between separate submissions, and correctness
	// must not hinge on pointer identity there.
	var appDigest Fingerprint
	if w.inBatch && w.batchApp == j.req.App {
		appDigest = w.batchDigest
	} else {
		appDigest = w.dig.appDigest(j.req.App)
		if w.inBatch {
			w.batchApp, w.batchDigest = j.req.App, appDigest
		}
	}
	mark := time.Now()
	w.trace.D[obs.StageFingerprint] = mark.Sub(start)

	var shape compiledShape
	var view PlacementView
	var hit bool
	for attempt := 0; ; attempt++ {
		key := w.dig.fingerprint(w.clusterDigest, appDigest, w.scheduler.Name())
		shape = f.shape(w, j.req.App, appDigest)
		now := time.Now()
		w.trace.D[obs.StageCompile] += now.Sub(mark)
		mark = now

		view, hit = f.cache.GetView(key)
		now = time.Now()
		w.trace.D[obs.StageCacheLookup] += now.Sub(mark)
		mark = now
		degraded := false
		if !hit {
			if !deadline.IsZero() && !now.Before(deadline) {
				f.deadlineExceeded.Add(1)
				resp.Err = fmt.Errorf("fleet: scheduling %s: %w", j.req.App.Name, ErrDeadline)
				return f.finish(w, resp, j)
			}
			var err error
			var placement sim.Placement
			placement, degraded, err = f.scheduleAttempt(w, j.req.App, shape.model, attempt, deadline)
			if err == nil {
				// Compile the scheduler's map into the job's pooled view
				// scratch; the response serves slices, never the map.
				j.names, j.assigns = view.setFromPlacement(placement, j.names, j.assigns)
				if !degraded {
					// Degraded placements stay out of the memo: once the
					// pressure passes, the shape deserves its exact
					// placement. The memo copies the scratch.
					f.cache.PutView(key, view)
				}
			}
			now = time.Now()
			w.trace.D[obs.StageSchedule] += now.Sub(mark)
			mark = now
			if err != nil {
				resp.Err = fmt.Errorf("fleet: scheduling %s: %w", j.req.App.Name, err)
				return f.finish(w, resp, j)
			}
		}

		// Stale-placement gate: churn may have advanced since this worker
		// adopted its epoch (or since the placement was memoized), so
		// validate against the latest published state before serving.
		latest := f.churn.Load()
		if latest.staleAssigns(view.assigns) {
			f.staleRejected.Add(1)
			if hit {
				f.cache.Remove(key)
			}
			if attempt+1 >= churnMaxAttempts {
				resp.Err = fmt.Errorf("fleet: scheduling %s: placement stale after %d attempts under churn", j.req.App.Name, attempt+1)
				return f.finish(w, resp, j)
			}
			f.reschedules.Add(1)
			w.backoff(attempt)
			w.adopt(f, f.churn.Load())
			mark = time.Now()
			continue
		}
		resp.Epoch = latest.epoch
		resp.Degraded = degraded
		if degraded {
			f.downgrades.Add(1)
		}
		resp.CacheHit = hit
		resp.Placement = view
		break
	}

	if !deadline.IsZero() && !time.Now().Before(deadline) {
		f.deadlineExceeded.Add(1)
		resp.Err = fmt.Errorf("fleet: simulating %s: %w", j.req.App.Name, ErrDeadline)
		return f.finish(w, resp, j)
	}
	opts := f.cfg.SimOptions
	opts.Seed += j.req.Seed
	result, err := w.exec.RunIndexed(w.planFor(j.req.App, shape.plan), view.names, view.assigns, opts)
	w.trace.D[obs.StageSim] = time.Since(mark)
	if err != nil {
		resp.Err = fmt.Errorf("fleet: simulating %s: %w", j.req.App.Name, err)
		return f.finish(w, resp, j)
	}
	// The exec's result buffer is reused on the next request; the response
	// escapes to the submitter, so it gets a detached copy — into the job's
	// pooled buffer, whose slices and maps a warm pool reuses outright.
	result.CloneInto(&j.result)
	resp.Result = &j.result
	return f.finish(w, resp, j)
}

// finish closes out a response: end-to-end latency and the stage breakdown
// copied off the worker's reusable trace.
func (f *Fleet) finish(w *workerState, resp *Response, j *job) *Response {
	resp.Latency = time.Since(j.enqueued)
	resp.Stages = w.trace
	return resp
}

// tenantLabels caches one tenant's resolved instrument handles so the
// per-request observe path is a handful of sharded atomic writes — no label
// concatenation and no registry lookups after first sight of the tenant.
// The instrument names follow the monitor convention (name{tenant=...}), so
// the same aggregates are readable through Metrics().Counter and rendered
// as labeled Prometheus families.
type tenantLabels struct {
	failed    *obs.Counter
	completed *obs.Counter
	cacheHits *obs.Counter
	latency   *obs.Histogram
	queueWait *obs.Histogram
	makespan  *obs.Histogram
	energy    *obs.Histogram
}

// tenantLabelCap bounds the interned label set: past it, new tenants record
// under the shared tenant="other" instruments, so a submitter churning
// through unbounded tenant names cannot grow worker memory — or the backing
// registry, which interns instrument names forever — without bound.
const tenantLabelCap = 1024

// newTenantLabels interns one tenant's instrument set in the registry.
func newTenantLabels(reg *obs.Registry, tenant string) *tenantLabels {
	return &tenantLabels{
		failed:    reg.Counter("fleet_failed{tenant=" + tenant + "}"),
		completed: reg.Counter("fleet_completed{tenant=" + tenant + "}"),
		cacheHits: reg.Counter("fleet_cache_hits{tenant=" + tenant + "}"),
		latency:   reg.Histogram("fleet_latency_s{tenant=" + tenant + "}"),
		queueWait: reg.Histogram("fleet_queue_wait_s{tenant=" + tenant + "}"),
		makespan:  reg.Histogram("fleet_makespan_s{tenant=" + tenant + "}"),
		energy:    reg.Histogram("fleet_energy_j{tenant=" + tenant + "}"),
	}
}

// labelsFor returns the tenant's resolved instrument handles. The cap check
// precedes any registry interning: the registry has no eviction, so a
// not-yet-interned tenant past the cap must not mint new instrument names.
func (f *Fleet) labelsFor(tenant string) *tenantLabels {
	if v, ok := f.labels.Load(tenant); ok {
		return v.(*tenantLabels)
	}
	if f.labelCount.Load() >= tenantLabelCap {
		return f.overflowLabels
	}
	v, loaded := f.labels.LoadOrStore(tenant, newTenantLabels(f.cfg.Metrics.Obs(), tenant))
	if !loaded {
		f.labelCount.Add(1)
	}
	return v.(*tenantLabels)
}

// observe folds one response into the per-tenant aggregates on the worker's
// own shard.
func (f *Fleet) observe(shard int, resp *Response) {
	l := f.labelsFor(resp.Tenant)
	if resp.Err != nil {
		l.failed.AddAt(shard, 1)
		return
	}
	l.completed.AddAt(shard, 1)
	if resp.CacheHit {
		l.cacheHits.AddAt(shard, 1)
	}
	l.latency.ObserveAt(shard, resp.Latency.Seconds())
	l.queueWait.ObserveAt(shard, resp.QueueWait.Seconds())
	l.makespan.ObserveAt(shard, resp.Result.Makespan)
	l.energy.ObserveAt(shard, float64(resp.Result.TotalEnergy))
}
