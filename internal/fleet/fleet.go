// Package fleet is DEEP's multi-tenant deployment service: it turns the
// single-shot Figure 1 pipeline (schedule one app, simulate it, report) into
// a throughput machine. Deployment requests enter a bounded admission queue
// with backpressure, fan out to a pool of scheduler workers, and have their
// placements memoized in a concurrency-safe LRU keyed by a canonical
// fingerprint of (app DAG, cluster, scheduler) — the Nash best-response
// iteration is deterministic, so repeated shapes skip the game entirely.
// The package also ships an open-loop traffic driver (Poisson, bursty, and
// diurnal arrival processes over configurable application mixes) for
// scenario sweeps far beyond the paper's two case studies.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/monitor"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/workload"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity; the request was rejected, not enqueued.
	ErrQueueFull = errors.New("fleet: admission queue full")
	// ErrClosed is returned by Submit after Close began.
	ErrClosed = errors.New("fleet: closed")
)

// Config tunes a Fleet.
type Config struct {
	// Workers is the scheduler/simulator pool size (default 1). Each worker
	// owns a private scheduler instance and a private cluster, so workers
	// never contend on scheduler state or device layer caches.
	Workers int
	// QueueDepth bounds the admission queue (default 64). A Submit against
	// a full queue is rejected with ErrQueueFull and counted.
	QueueDepth int
	// NewScheduler constructs one scheduler per worker (default
	// sched.NewDEEP). Any method from sched.All works.
	NewScheduler func() sched.Scheduler
	// NewCluster constructs one cluster per worker (default
	// workload.Testbed). Workers need private clusters because simulation
	// mutates device layer caches.
	NewCluster func() *sim.Cluster
	// CacheSize bounds the placement LRU in entries. Zero means the
	// default of 1024; a negative value disables placement memoization.
	CacheSize int
	// ModelCacheSize bounds the fleet-wide shared compiled-shape cache
	// (cost model + simulator plan) in entries. Zero means the default of
	// 256; a negative value disables sharing — every request then compiles
	// a transient simulator plan, and every placement-cache miss a
	// transient cost model. Unlike the placement cache it is keyed by
	// (app, cluster) only, so one compiled shape serves every scheduler
	// and every worker on the same request shape, with a singleflight fill
	// deduplicating concurrent compilations.
	ModelCacheSize int
	// SimOptions apply to every simulation run; per-request seeds are
	// folded in on top. A fleet is a long-lived service, so by default
	// SimOptions.WarmCaches is forced on — device layer caches persist
	// across requests, the way a real cluster's image caches do. Set
	// ColdCaches to keep whatever WarmCaches value this carries.
	SimOptions sim.Options
	// ColdCaches opts out of the warm-cache default: when true, SimOptions
	// is taken verbatim (its zero value flushes every device layer cache
	// before each run — the one-shot benchmarking behavior, not what a
	// long-lived service wants).
	ColdCaches bool
	// Metrics receives per-tenant aggregates (default: a fresh registry).
	Metrics *monitor.Metrics
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.NewScheduler == nil {
		c.NewScheduler = func() sched.Scheduler { return sched.NewDEEP() }
	}
	if c.NewCluster == nil {
		c.NewCluster = workload.Testbed
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.ModelCacheSize == 0 {
		c.ModelCacheSize = defaultModelCacheSize
	}
	if !c.ColdCaches {
		c.SimOptions.WarmCaches = true
	}
	if c.Metrics == nil {
		c.Metrics = monitor.NewMetrics()
	}
	return c
}

// Request is one tenant's deployment request.
type Request struct {
	// Tenant labels the requester for per-tenant aggregation (default
	// "default").
	Tenant string
	// App is the application to deploy.
	App *dag.App
	// Seed perturbs this request's simulation jitter (combined with
	// Config.SimOptions).
	Seed int64
}

// Response is the outcome of one deployment request.
type Response struct {
	Tenant    string
	App       string
	Placement sim.Placement
	Result    *sim.Result
	// CacheHit is true when the placement came from the memo instead of a
	// scheduling pass.
	CacheHit bool
	// QueueWait is the time spent in the admission queue.
	QueueWait time.Duration
	// Latency is the end-to-end service time (queue wait + scheduling +
	// simulation).
	Latency time.Duration
	// Err is non-nil when scheduling or simulation failed.
	Err error
}

// Stats is a point-in-time view of the fleet's counters.
type Stats struct {
	Submitted  int64           `json:"submitted"`
	Rejected   int64           `json:"rejected"`
	Completed  int64           `json:"completed"`
	Failed     int64           `json:"failed"`
	InFlight   int64           `json:"in_flight"`
	Cache      CacheStats      `json:"cache"`
	ModelCache ModelCacheStats `json:"model_cache"`
}

// Fleet is a concurrent multi-tenant deployment service. Create with New,
// submit with Submit or Do, stop with Close.
type Fleet struct {
	cfg    Config
	cache  *placementCache
	models *sharedModelCache
	queue  chan *job

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	// labels interns per-tenant metric names, capped at tenantLabelCap
	// entries (see labelsFor).
	labels     sync.Map
	labelCount atomic.Int64

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	inFlight  atomic.Int64
}

type job struct {
	req      Request
	enqueued time.Time
	done     chan *Response
}

// New starts a fleet with the given config, spinning up the worker pool.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:    cfg,
		cache:  newPlacementCache(cfg.CacheSize),
		models: newSharedModelCache(cfg.ModelCacheSize),
		queue:  make(chan *job, cfg.QueueDepth),
	}
	f.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go f.worker()
	}
	return f
}

// Metrics returns the registry receiving per-tenant aggregates.
func (f *Fleet) Metrics() *monitor.Metrics { return f.cfg.Metrics }

// Stats snapshots the fleet counters.
func (f *Fleet) Stats() Stats {
	return Stats{
		Submitted:  f.submitted.Load(),
		Rejected:   f.rejected.Load(),
		Completed:  f.completed.Load(),
		Failed:     f.failed.Load(),
		InFlight:   f.inFlight.Load(),
		Cache:      f.cache.Stats(),
		ModelCache: f.models.Stats(),
	}
}

// Submit enqueues a request without blocking. The returned channel delivers
// exactly one Response when the request completes. A full queue rejects the
// request with ErrQueueFull; a closed fleet rejects with ErrClosed.
func (f *Fleet) Submit(req Request) (<-chan *Response, error) {
	if req.App == nil {
		return nil, fmt.Errorf("fleet: request without app")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	j := &job{req: req, enqueued: time.Now(), done: make(chan *Response, 1)}

	// The read lock lets many submitters race each other but excludes
	// Close, so a send can never hit a closed channel.
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		f.rejected.Add(1)
		return nil, ErrClosed
	}
	select {
	case f.queue <- j:
		f.submitted.Add(1)
		f.inFlight.Add(1)
		return j.done, nil
	default:
		f.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// Do submits a request and blocks for its response (or ctx cancellation).
func (f *Fleet) Do(ctx context.Context, req Request) (*Response, error) {
	ch, err := f.Submit(req)
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admission and drains: every request already accepted is
// completed before Close returns. Safe to call more than once.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	close(f.queue)
	f.mu.Unlock()
	f.wg.Wait()
}

// workerState is the per-worker context: a private scheduler and cluster
// (simulation mutates device layer caches), the cluster digest computed
// once, the shared cluster table resolved once against that digest, a
// fingerprint digester with reusable scratch, a pooled simulator Exec, and a
// pool of scheduler passes keyed by compiled model. Compiled tables, models,
// and plans live in the fleet-wide shared cache, not here: hot tenants
// compile once per fleet rather than once per worker.
type workerState struct {
	scheduler     sched.Scheduler
	cluster       *sim.Cluster
	clusterDigest ClusterDigest
	// table is the cluster-side compiled substrate every app-side compile
	// for this worker builds on; workers with digest-identical clusters
	// (the normal case) share one, resolved through the fleet-wide cache.
	table *topo.ClusterTable
	dig   *digester
	exec  *sim.Exec

	passes map[*costmodel.Model]*sched.Pass
	// plans memoizes shared plans rebound to this worker's own cluster:
	// simulation drives (and on cold runs flushes) device layer caches, so
	// each worker must execute against its private devices even when the
	// compiled tables are shared fleet-wide.
	plans map[*sim.Plan]*sim.Plan
}

// defaultModelCacheSize bounds the fleet-wide compiled-shape cache. Models
// and plans are a few dense arrays each; 256 covers the distinct shapes of
// a large multi-tenant mix without unbounded growth.
const defaultModelCacheSize = 256

// passPoolCap bounds each worker's pass and rebound-plan pools. Both are
// keyed by compiled-object identity, so they normally track the shared
// shape cache; the cap matters when that cache is disabled or churning
// (fresh identities per request) and evicts one arbitrary entry per
// insertion instead of growing without bound — hot entries survive and
// evicted shared-cache objects are not pinned indefinitely.
const passPoolCap = 64

// evictOnePoolEntry drops one arbitrary entry from a pool map at capacity.
func evictOnePoolEntry[K comparable, V any](pool map[K]V) {
	for k := range pool {
		delete(pool, k)
		return
	}
}

// worker owns one scheduler and one cluster and processes jobs until the
// queue closes.
func (f *Fleet) worker() {
	defer f.wg.Done()
	cluster := f.cfg.NewCluster()
	w := &workerState{
		scheduler:     f.cfg.NewScheduler(),
		cluster:       cluster,
		clusterDigest: DigestCluster(cluster),
		dig:           newDigester(),
		exec:          sim.NewExec(),
		passes:        make(map[*costmodel.Model]*sched.Pass),
		plans:         make(map[*sim.Plan]*sim.Plan),
	}
	// Resolve the cluster-side compiled substrate once per worker lifetime:
	// the first worker per cluster digest compiles it, the rest share it.
	w.table = f.models.tableFor(w.clusterDigest, func() *topo.ClusterTable {
		return sim.CompileClusterTable(cluster)
	})
	for j := range f.queue {
		resp := f.process(w, j)
		f.inFlight.Add(-1)
		if resp.Err != nil {
			f.failed.Add(1)
		} else {
			f.completed.Add(1)
		}
		f.observe(resp)
		j.done <- resp
	}
}

// schedule computes a placement for the job on the shared compiled model.
// Schedulers that support reusable passes (sched.PassScheduler — DEEP) run
// on a pooled Pass keyed by model, so warm scheduling allocates only the
// materialized placement map; plain ModelSchedulers run on the shared model
// with fresh scratch, and everything else falls back to the string-keyed
// Schedule path.
func (f *Fleet) schedule(w *workerState, app *dag.App, model *costmodel.Model) (sim.Placement, error) {
	if model == nil {
		// The shape was compiled without a model (non-model scheduler).
		return w.scheduler.Schedule(app, w.cluster)
	}
	switch s := w.scheduler.(type) {
	case sched.PassScheduler:
		p := w.passes[model]
		if p == nil {
			if len(w.passes) >= passPoolCap {
				evictOnePoolEntry(w.passes)
			}
			p = sched.NewPass(model)
			w.passes[model] = p
		}
		if err := s.ScheduleInto(p); err != nil {
			return nil, err
		}
		return p.Placement(), nil
	case sched.ModelScheduler:
		return s.ScheduleModel(model)
	default:
		return w.scheduler.Schedule(app, w.cluster)
	}
}

// shape returns the request's compiled model and executor plan from the
// fleet-wide cache, compiling them on first sight of the (app, cluster)
// shape. The plan is always compiled, since every request simulates. The
// cost model is compiled only when it can pay for itself: the scheduler
// must be able to read it, and the cache must be enabled — with the cache
// disabled the model would be dead weight on placement-cache hits, so
// schedule() falls back to the string-keyed path instead (which compiles
// its own transient model per miss, the pre-cache behavior). The key folds
// in the worker's own cluster digest, so workers with identical clusters
// (the normal case — every worker runs Config.NewCluster) share one
// compiled shape per app, and a reconfigured cluster can never alias
// another's shapes.
func (f *Fleet) shape(w *workerState, app *dag.App, appDigest Fingerprint) compiledShape {
	_, modelScheduler := w.scheduler.(sched.ModelScheduler)
	needModel := modelScheduler && f.models.enabled()
	return f.models.getOrCompile(w.dig.fingerprint(w.clusterDigest, appDigest, ""), func() compiledShape {
		// App-side passes only: the cluster-side tables come precompiled
		// from the worker's shared cluster table, so a cold shape costs
		// O(app) work instead of two O(devices²) topology scans.
		s := compiledShape{plan: sim.CompilePlanOn(app, w.cluster, w.table)}
		if needModel {
			s.model = costmodel.CompileOn(app, w.cluster, w.table)
		}
		return s
	})
}

// planFor resolves the shared plan against the worker's own cluster: the
// compiled tables stay shared, but the device handles (whose layer caches
// the Exec drives and flushes) must be the worker's private ones. The
// rebinding is memoized per shared plan; a plan already bound to this
// worker's cluster (the shape cache disabled, or this worker compiled it)
// passes through untouched.
func (w *workerState) planFor(app *dag.App, shared *sim.Plan) *sim.Plan {
	if bound, ok := w.plans[shared]; ok {
		return bound
	}
	bound, ok := shared.Rebind(w.cluster)
	if !ok {
		// Shape mismatch (cannot happen while keys fold the cluster digest
		// in): fall back to a private compilation.
		bound = sim.CompilePlan(app, w.cluster)
	}
	if bound == shared {
		return shared
	}
	if len(w.plans) >= passPoolCap {
		evictOnePoolEntry(w.plans)
	}
	w.plans[shared] = bound
	return bound
}

// process runs the (possibly memoized) schedule-then-simulate pipeline for
// one job on the worker's private scheduler and cluster. In steady state —
// shape cache hot, placement memoized or pass pooled, layer caches warm —
// the whole path allocates only the response plumbing and the caller-owned
// placement and result copies.
func (f *Fleet) process(w *workerState, j *job) *Response {
	start := time.Now()
	resp := &Response{
		Tenant:    j.req.Tenant,
		App:       j.req.App.Name,
		QueueWait: start.Sub(j.enqueued),
	}

	appDigest := w.dig.appDigest(j.req.App)
	shape := f.shape(w, j.req.App, appDigest)
	key := w.dig.fingerprint(w.clusterDigest, appDigest, w.scheduler.Name())
	placement, hit := f.cache.Get(key)
	if !hit {
		var err error
		placement, err = f.schedule(w, j.req.App, shape.model)
		if err != nil {
			resp.Err = fmt.Errorf("fleet: scheduling %s: %w", j.req.App.Name, err)
			resp.Latency = time.Since(j.enqueued)
			return resp
		}
		f.cache.Put(key, placement)
	}
	resp.CacheHit = hit
	resp.Placement = placement

	opts := f.cfg.SimOptions
	opts.Seed += j.req.Seed
	result, err := w.exec.Run(w.planFor(j.req.App, shape.plan), placement, opts)
	if err != nil {
		resp.Err = fmt.Errorf("fleet: simulating %s: %w", j.req.App.Name, err)
		resp.Latency = time.Since(j.enqueued)
		return resp
	}
	// The exec's result buffer is reused on the next request; the response
	// escapes to the submitter, so it gets a detached copy.
	resp.Result = result.Clone()
	resp.Latency = time.Since(j.enqueued)
	return resp
}

// tenantLabels caches the formatted metric names for one tenant so the
// per-request observe path stops concatenating label strings.
type tenantLabels struct {
	failed    string
	completed string
	cacheHits string
	latency   string
	queueWait string
	makespan  string
	energy    string
}

// tenantLabelCap bounds the interned label set: past it, labels for new
// tenants are built transiently instead of cached, so a submitter churning
// through unbounded tenant names cannot grow worker memory without bound.
const tenantLabelCap = 1024

// labelsFor returns the tenant's interned metric names.
func (f *Fleet) labelsFor(tenant string) *tenantLabels {
	if v, ok := f.labels.Load(tenant); ok {
		return v.(*tenantLabels)
	}
	l := &tenantLabels{
		failed:    "fleet_failed{tenant=" + tenant + "}",
		completed: "fleet_completed{tenant=" + tenant + "}",
		cacheHits: "fleet_cache_hits{tenant=" + tenant + "}",
		latency:   "fleet_latency_s{tenant=" + tenant + "}",
		queueWait: "fleet_queue_wait_s{tenant=" + tenant + "}",
		makespan:  "fleet_makespan_s{tenant=" + tenant + "}",
		energy:    "fleet_energy_j{tenant=" + tenant + "}",
	}
	if f.labelCount.Load() >= tenantLabelCap {
		return l // transient: the intern set is full
	}
	v, loaded := f.labels.LoadOrStore(tenant, l)
	if !loaded {
		f.labelCount.Add(1)
	}
	return v.(*tenantLabels)
}

// observe folds one response into the per-tenant aggregates.
func (f *Fleet) observe(resp *Response) {
	m := f.cfg.Metrics
	l := f.labelsFor(resp.Tenant)
	if resp.Err != nil {
		m.Inc(l.failed, 1)
		return
	}
	m.Inc(l.completed, 1)
	if resp.CacheHit {
		m.Inc(l.cacheHits, 1)
	}
	m.Observe(l.latency, resp.Latency.Seconds())
	m.Observe(l.queueWait, resp.QueueWait.Seconds())
	m.Observe(l.makespan, resp.Result.Makespan)
	m.Observe(l.energy, float64(resp.Result.TotalEnergy))
}
