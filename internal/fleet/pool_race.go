//go:build race

package fleet

// raceEnabled gates the pooled-response double-release panic: in race builds
// (the CI stress configuration) releasing a pooled Response twice is a
// loud bug instead of silent pool corruption.
const raceEnabled = true
