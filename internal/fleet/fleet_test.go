package fleet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"deep/internal/dag"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
	"deep/internal/workload"
)

func testFleet(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f := New(cfg)
	t.Cleanup(f.Close)
	return f
}

func TestDoVideoAndText(t *testing.T) {
	f := testFleet(t, Config{Workers: 2})
	for _, app := range []*dag.App{workload.VideoProcessing(), workload.TextProcessing()} {
		resp, err := f.Do(context.Background(), Request{Tenant: "t", App: app})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Placement.Len() != len(app.Microservices) {
			t.Fatalf("%s: placement covers %d of %d microservices", app.Name, resp.Placement.Len(), len(app.Microservices))
		}
		if resp.Result == nil || resp.Result.Makespan <= 0 {
			t.Fatalf("%s: missing simulation result", app.Name)
		}
	}
}

// TestCacheHitMatchesColdSchedule asserts the memoized placement is
// identical to what a cold scheduling pass computes — the property that
// makes memoization sound.
func TestCacheHitMatchesColdSchedule(t *testing.T) {
	f := testFleet(t, Config{Workers: 3})
	app := workload.TextProcessing()

	cold, err := f.Do(context.Background(), Request{App: app})
	if err != nil || cold.Err != nil {
		t.Fatal(err, cold.Err)
	}
	if cold.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}

	// Fresh but structurally identical app objects must hit and match.
	reference, err := sched.NewDEEP().Schedule(workload.TextProcessing(), workload.Testbed())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, err := f.Do(context.Background(), Request{App: workload.TextProcessing(), Seed: int64(i)})
		if err != nil || resp.Err != nil {
			t.Fatal(err, resp.Err)
		}
		if !resp.CacheHit {
			t.Fatalf("repeat %d missed the cache", i)
		}
		if !reflect.DeepEqual(resp.Placement.Materialize(), reference) {
			t.Fatalf("repeat %d: cached placement %v != cold schedule %v", i, resp.Placement, reference)
		}
	}
	if stats := f.Stats(); stats.Cache.Hits < 5 {
		t.Fatalf("want >= 5 cache hits, got %+v", stats.Cache)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	cluster := workload.Testbed()
	base := FingerprintOf(workload.TextProcessing(), cluster, "deep")
	if again := FingerprintOf(workload.TextProcessing(), cluster, "deep"); again != base {
		t.Fatal("identical inputs produced different fingerprints")
	}
	if other := FingerprintOf(workload.VideoProcessing(), cluster, "deep"); other == base {
		t.Fatal("different apps collided")
	}
	if other := FingerprintOf(workload.TextProcessing(), cluster, "round-robin"); other == base {
		t.Fatal("different schedulers collided")
	}
	bigger := workload.ScaledTestbed(2)
	if other := FingerprintOf(workload.TextProcessing(), bigger, "deep"); other == base {
		t.Fatal("different clusters collided")
	}
	// A one-byte perturbation of a dataflow size must change the digest.
	tweaked := workload.TextProcessing()
	tweaked.Dataflows[0].Size++
	if other := FingerprintOf(tweaked, cluster, "deep"); other == base {
		t.Fatal("perturbed dataflow collided")
	}
}

// TestFingerprintSeparatorInName asserts a separator byte inside a
// microservice name cannot realign two distinct apps onto one digest
// (name "m|5" + size 0 vs name "m" + size 5).
func TestFingerprintSeparatorInName(t *testing.T) {
	cluster := workload.Testbed()
	mk := func(name string, size int64) *dag.App {
		a := dag.NewApp("x")
		if err := a.AddMicroservice(&dag.Microservice{Name: name, ImageSize: units.Bytes(size)}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := mk("m|5", 0)
	b := mk("m", 5)
	if FingerprintOf(a, cluster, "deep") == FingerprintOf(b, cluster, "deep") {
		t.Fatal("separator byte in a name realigned two distinct apps")
	}
}

// TestStress floods a small pool with hundreds of concurrent requests from
// many submitter goroutines; run under -race this exercises every shared
// structure (queue, cache, counters, metrics).
func TestStress(t *testing.T) {
	f := testFleet(t, Config{Workers: 4, QueueDepth: 512, CacheSize: 64})
	apps := []*dag.App{workload.VideoProcessing(), workload.TextProcessing()}
	for i := 0; i < 4; i++ {
		app, err := workload.Generate(workload.DefaultGeneratorConfig(8, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}

	const submitters = 8
	const perSubmitter = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := 0
	rejected := 0
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var pending []<-chan *Response
			for i := 0; i < perSubmitter; i++ {
				app := apps[(s*perSubmitter+i)%len(apps)]
				ch, err := f.Submit(Request{Tenant: fmt.Sprintf("t%d", s), App: app, Seed: int64(i)})
				if errors.Is(err, ErrQueueFull) {
					mu.Lock()
					rejected++
					mu.Unlock()
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				pending = append(pending, ch)
			}
			for _, ch := range pending {
				resp := <-ch
				if resp.Err != nil {
					t.Error(resp.Err)
					return
				}
				mu.Lock()
				accepted++
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()

	stats := f.Stats()
	if got := int(stats.Completed); got != accepted {
		t.Fatalf("completed %d != drained %d", got, accepted)
	}
	if got := int(stats.Rejected); got != rejected {
		t.Fatalf("fleet counted %d rejections, submitters saw %d", got, rejected)
	}
	if accepted+rejected != submitters*perSubmitter {
		t.Fatalf("accounted %d of %d requests", accepted+rejected, submitters*perSubmitter)
	}
	if stats.InFlight != 0 {
		t.Fatalf("in-flight %d after drain", stats.InFlight)
	}
	if stats.Cache.Hits == 0 {
		t.Fatal("repeated app mix produced no cache hits")
	}
	// Per-tenant aggregates arrived in the metrics registry.
	total := 0.0
	for s := 0; s < submitters; s++ {
		total += f.Metrics().Counter(fmt.Sprintf("fleet_completed{tenant=t%d}", s))
	}
	if int(total) != accepted {
		t.Fatalf("metrics counted %v completions, want %d", total, accepted)
	}
}

// TestQueueFullRejection fills the queue deterministically with a stalled
// worker pool and checks rejections are surfaced and counted.
func TestQueueFullRejection(t *testing.T) {
	block := make(chan struct{})
	slowCluster := func() *sim.Cluster {
		<-block // stall worker startup so nothing drains the queue
		return workload.Testbed()
	}
	f := New(Config{Workers: 1, QueueDepth: 2, NewCluster: slowCluster})
	defer func() {
		close(block)
		f.Close()
	}()

	app := workload.TextProcessing()
	okCount, fullCount := 0, 0
	for i := 0; i < 5; i++ {
		_, err := f.Submit(Request{App: app})
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, ErrQueueFull):
			fullCount++
		default:
			t.Fatal(err)
		}
	}
	if okCount != 2 || fullCount != 3 {
		t.Fatalf("accepted %d rejected %d, want 2 and 3", okCount, fullCount)
	}
	if got := f.Stats().Rejected; got != 3 {
		t.Fatalf("rejection counter %d, want 3", got)
	}
}

// TestCloseDrains submits a batch, closes immediately, and checks every
// accepted request still gets exactly one response.
func TestCloseDrains(t *testing.T) {
	f := New(Config{Workers: 2, QueueDepth: 128})
	var pending []<-chan *Response
	for i := 0; i < 40; i++ {
		ch, err := f.Submit(Request{App: workload.VideoProcessing(), Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, ch)
	}
	f.Close()
	for i, ch := range pending {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d failed during drain: %v", i, resp.Err)
			}
		default:
			t.Fatalf("request %d not drained by Close", i)
		}
	}
	if _, err := f.Submit(Request{App: workload.VideoProcessing()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if got := f.Stats().Completed; got != 40 {
		t.Fatalf("completed %d, want 40", got)
	}
}

func TestDriveOpenLoop(t *testing.T) {
	f := testFleet(t, Config{Workers: 4, QueueDepth: 256})
	mix := CaseStudyMix()
	report, err := Drive(context.Background(), f, TrafficConfig{
		Arrivals: NewPoisson(2000),
		Mix:      mix,
		Requests: 300,
		Speedup:  10,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Attempts != 300 {
		t.Fatalf("attempts %d, want 300", report.Attempts)
	}
	if report.Completed+report.Rejected != report.Attempts {
		t.Fatalf("completed %d + rejected %d != attempts %d", report.Completed, report.Rejected, report.Attempts)
	}
	if report.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// Two app shapes cycling through: almost everything after the first
	// two schedules must hit.
	if report.Cache.HitRate() < 0.5 {
		t.Fatalf("cache hit rate %.2f, want > 0.5 on a two-shape mix", report.Cache.HitRate())
	}
	if report.LatencyP50 <= 0 || report.LatencyMax < report.LatencyP50 {
		t.Fatalf("implausible latency quantiles: %+v", report)
	}
	for _, tenant := range []string{"video", "text"} {
		ts, ok := report.PerTenant[tenant]
		if !ok || ts.Completed == 0 {
			t.Fatalf("tenant %s missing from report: %+v", tenant, report.PerTenant)
		}
		if ts.MeanMakespan <= 0 || ts.Energy <= 0 {
			t.Fatalf("tenant %s has empty aggregates: %+v", tenant, ts)
		}
	}
	if report.String() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestDriveDurationBound(t *testing.T) {
	f := testFleet(t, Config{Workers: 2})
	report, err := Drive(context.Background(), f, TrafficConfig{
		Arrivals: NewPoisson(500),
		Mix:      CaseStudyMix(),
		Duration: 150 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Attempts == 0 {
		t.Fatal("duration-bounded drive made no attempts")
	}
	if report.Elapsed > 5*time.Second {
		t.Fatalf("drive ran %s for a 150ms bound", report.Elapsed)
	}
}

// TestDriveZeroRate asserts a process that will never produce an arrival
// ends the session instead of busy-looping or blocking forever.
func TestDriveZeroRate(t *testing.T) {
	f := testFleet(t, Config{Workers: 1})
	done := make(chan *Report, 1)
	go func() {
		report, err := Drive(context.Background(), f, TrafficConfig{
			Arrivals: NewPoisson(0),
			Mix:      CaseStudyMix(),
			Requests: 10,
			Seed:     1,
		})
		if err != nil {
			t.Error(err)
		}
		done <- report
	}()
	select {
	case report := <-done:
		if report != nil && report.Attempts != 0 {
			t.Fatalf("zero-rate drive made %d attempts", report.Attempts)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("zero-rate drive hung")
	}
}

// TestDriveSparseArrivalsHonorDeadline asserts a Duration bound is not
// overshot by one long inter-arrival gap.
func TestDriveSparseArrivalsHonorDeadline(t *testing.T) {
	f := testFleet(t, Config{Workers: 1})
	start := time.Now()
	// Mean gap 10s >> the 200ms bound.
	report, err := Drive(context.Background(), f, TrafficConfig{
		Arrivals: NewPoisson(0.1),
		Mix:      CaseStudyMix(),
		Duration: 200 * time.Millisecond,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("200ms-bounded drive ran %s", took)
	}
	if report.Elapsed > 3*time.Second {
		t.Fatalf("report claims %s elapsed", report.Elapsed)
	}
}

// TestDriveReportsPerSessionCacheStats asserts a second Drive on the same
// fleet reports only its own cache activity.
func TestDriveReportsPerSessionCacheStats(t *testing.T) {
	f := testFleet(t, Config{Workers: 2})
	cfg := TrafficConfig{
		Arrivals: NewPoisson(5000),
		Mix:      CaseStudyMix(),
		Requests: 50,
		Seed:     4,
	}
	warm, err := Drive(context.Background(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses == 0 {
		t.Fatal("warm-up session missed nothing")
	}
	measured, err := Drive(context.Background(), f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if measured.Cache.Misses != 0 {
		t.Fatalf("second session reports %d misses from the first", measured.Cache.Misses)
	}
	if total := measured.Cache.Hits + measured.Cache.Misses; int(total) > measured.Completed {
		t.Fatalf("session reports %d lookups for %d completions", total, measured.Completed)
	}
}

func TestDriveContextCancel(t *testing.T) {
	f := testFleet(t, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// Rate 1 req/s: without cancellation this would take ~50s.
	report, err := Drive(ctx, f, TrafficConfig{
		Arrivals: NewPoisson(1),
		Mix:      CaseStudyMix(),
		Requests: 50,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Attempts >= 50 {
		t.Fatalf("cancellation did not stop the driver (attempts=%d)", report.Attempts)
	}
}

func TestSyntheticMixDeterminism(t *testing.T) {
	a, err := SyntheticMix(3, 2, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticMix(3, 2, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 || len(a[0].Apps) != 2 {
		t.Fatalf("mix shape: %d tenants, %d apps", len(a), len(a[0].Apps))
	}
	for i := range a {
		for j := range a[i].Apps {
			fa := FingerprintOf(a[i].Apps[j], workload.Testbed(), "deep")
			fb := FingerprintOf(b[i].Apps[j], workload.Testbed(), "deep")
			if fa != fb {
				t.Fatalf("tenant %d app %d not deterministic", i, j)
			}
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	f := testFleet(t, Config{Workers: 1, CacheSize: -1})
	for i := 0; i < 3; i++ {
		resp, err := f.Do(context.Background(), Request{App: workload.TextProcessing()})
		if err != nil || resp.Err != nil {
			t.Fatal(err, resp.Err)
		}
		if resp.CacheHit {
			t.Fatal("cache hit with caching disabled")
		}
	}
	if stats := f.Stats().Cache; stats.Hits != 0 || stats.Entries != 0 {
		t.Fatalf("disabled cache has state: %+v", stats)
	}
}

// fpOf builds a distinct Fingerprint from a short label, for cache tests.
func fpOf(s string) (f Fingerprint) {
	copy(f[:], s)
	return f
}

func TestLRUEviction(t *testing.T) {
	c := newPlacementCache(2)
	p := sim.Placement{"m": {Device: "d", Registry: "r"}}
	c.Put(fpOf("a"), p)
	c.Put(fpOf("b"), p)
	if _, ok := c.Get(fpOf("a")); !ok { // refresh "a"
		t.Fatal("a missing")
	}
	c.Put(fpOf("c"), p) // evicts "b", the LRU entry
	if _, ok := c.Get(fpOf("b")); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get(fpOf("a")); !ok {
		t.Fatal("refreshed entry was evicted")
	}
	if _, ok := c.Get(fpOf("c")); !ok {
		t.Fatal("newest entry missing")
	}
	stats := c.Stats()
	if stats.Evictions != 1 || stats.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction and 2 entries", stats)
	}
	// Mutating a Get result must not corrupt the cached copy.
	got, _ := c.Get(fpOf("a"))
	got["m"] = sim.Assignment{Device: "x", Registry: "y"}
	again, _ := c.Get(fpOf("a"))
	if again["m"].Device != "d" {
		t.Fatal("cache entry mutated through a Get copy")
	}
}
